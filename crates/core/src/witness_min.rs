//! Witness minimization by marking and reparenting (§5.1.1).
//!
//! The NP-membership proofs shrink an arbitrary conflict witness to one of
//! polynomial size: **mark** the nodes used by one read embedding and the
//! insertion/deletion embeddings it depends on (Definition 9), then
//! repeatedly **reparent** (Definition 10) — replace any run of more than
//! `k+1` unmarked nodes between a marked node and its nearest marked
//! ancestor with a chain of exactly `k+1` fresh `α`-labeled nodes
//! (`k = STAR-LENGTH(R)`) — and finally discard unmarked branches.
//! Lemma 9 guarantees reparenting adds no new read results; Lemma 10 that
//! the result still witnesses the conflict; Lemma 11 bounds its size by
//! `|R|·|U|·(k+1)`.
//!
//! [`minimize`] implements exactly this pipeline and (defensively)
//! re-verifies the output with the Lemma 1 checker, returning the input
//! unchanged if anything failed — so it is safe on any witness.

use cxu_ops::witness::witnesses_update_conflict;
use cxu_ops::{Read, Semantics, Update};
use cxu_pattern::embed;
use cxu_tree::{NodeId, Symbol, Tree};
use std::collections::HashSet;

/// Minimizes a conflict witness. `w` must witness a conflict between `r`
/// and `u` under `sem` (checked; returns `None` if it does not). The
/// result is a (usually much smaller) tree that still witnesses the
/// conflict.
pub fn minimize(r: &Read, u: &Update, w: &Tree, sem: Semantics) -> Option<Tree> {
    if !witnesses_update_conflict(r, u, w, sem) {
        return None;
    }
    let marked = mark(r, u, w)?;
    let k = r.pattern().star_length();
    let rebuilt = rebuild(w, &marked, k, r, u);
    if witnesses_update_conflict(r, u, &rebuilt, sem) {
        Some(rebuilt)
    } else {
        // Defensive fallback: marking covers the node-conflict cases the
        // paper proves; for exotic tree/value cases keep the original.
        Some(w.clone())
    }
}

/// Definition 9: the marked node set for a node-conflict witness.
fn mark(r: &Read, u: &Update, w: &Tree) -> Option<HashSet<NodeId>> {
    let mut marked: HashSet<NodeId> = HashSet::new();
    let w_nodes: HashSet<NodeId> = w.nodes().collect();

    let (after, _) = u.apply_to_copy(w);
    let before_set: HashSet<NodeId> = r.eval(w).into_iter().collect();
    let after_set: HashSet<NodeId> = r.eval(&after).into_iter().collect();

    match u {
        Update::Insert(i) => {
            // n_witness ∈ R(I(W)) \ R(W).
            let n_witness = after_set.difference(&before_set).copied().next()?;
            let e_r = embed::find_with_output(r.pattern(), &after, n_witness)?;
            for &img in e_r.images() {
                if w_nodes.contains(&img) {
                    marked.insert(img);
                } else {
                    // Nearest ancestor in W is an insertion point; mark an
                    // insert-embedding that selects it.
                    let anchor = after
                        .ancestors(img)
                        .find(|a| w_nodes.contains(a))
                        .expect("the root is always in W");
                    marked.insert(anchor);
                    let e_i = embed::find_with_output(i.pattern(), w, anchor)?;
                    marked.extend(e_i.images().iter().copied());
                }
            }
        }
        Update::Delete(d) => {
            // v ∈ R(W) \ R(D(W)); mark a read embedding reaching v and a
            // delete embedding selecting the deletion point above it.
            let v = before_set.difference(&after_set).copied().next()?;
            let e_r = embed::find_with_output(r.pattern(), w, v)?;
            marked.extend(e_r.images().iter().copied());
            // The deletion point: the highest ancestor-or-self of v that
            // the deletion selects (Theorem 5's u).
            let points: HashSet<NodeId> = {
                let mut t2 = w.clone();
                Update::Delete(d.clone())
                    .apply(&mut t2)
                    .into_iter()
                    .collect()
            };
            let mut chain: Vec<NodeId> = vec![v];
            chain.extend(w.ancestors(v));
            let point = chain.into_iter().rev().find(|n| points.contains(n))?;
            marked.insert(point);
            let e_d = embed::find_with_output(d.pattern(), w, point)?;
            marked.extend(e_d.images().iter().copied());
        }
    }
    marked.insert(w.root());
    Some(marked)
}

/// Rebuilds the witness over the marked nodes: keeps each marked node and
/// the path to its nearest marked ancestor, replacing runs of more than
/// `k+1` unmarked intermediates with `k+1` fresh `α` nodes (the reparent
/// of Definition 10), and drops everything else (the pruning step of
/// Lemma 11).
fn rebuild(w: &Tree, marked: &HashSet<NodeId>, k: usize, r: &Read, u: &Update) -> Tree {
    let alpha = {
        let mut avoid = r.pattern().alphabet();
        avoid.extend(u.pattern().alphabet());
        if let Update::Insert(i) = u {
            avoid.extend(i.subtree().alphabet());
        }
        avoid.extend(w.alphabet());
        Symbol::fresh("alpha", &avoid)
    };

    let mut out = Tree::new(w.label(w.root()));
    // Map from marked original node → its copy in `out`.
    let mut copy_of: Vec<Option<NodeId>> = vec![None; w.slot_count()];
    copy_of[w.root().index()] = Some(out.root());

    // Process marked nodes in preorder so each node's nearest marked
    // ancestor is already copied.
    for n in w.nodes() {
        if n == w.root() || !marked.contains(&n) {
            continue;
        }
        // Walk up to the nearest marked ancestor, collecting intermediates.
        let mut intermediates: Vec<NodeId> = Vec::new();
        let mut anc = w.parent(n).expect("non-root");
        while !marked.contains(&anc) {
            intermediates.push(anc);
            anc = w.parent(anc).expect("root is marked");
        }
        let mut attach = copy_of[anc.index()].expect("ancestor copied in preorder");
        if intermediates.len() <= k + 1 {
            // Keep the original intermediates (labels preserved).
            for &mid in intermediates.iter().rev() {
                attach = out.build_child(attach, w.label(mid));
            }
        } else {
            // Reparent: exactly k+1 α nodes.
            for _ in 0..=k {
                attach = out.build_child(attach, alpha);
            }
        }
        copy_of[n.index()] = Some(out.build_child(attach, w.label(n)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{find_witness, Budget, SearchOutcome};
    use cxu_ops::{Delete, Insert};
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn read(p: &str) -> Read {
        Read::new(parse(p).unwrap())
    }

    fn ins(p: &str, x: &str) -> Update {
        Update::Insert(Insert::new(parse(p).unwrap(), text::parse(x).unwrap()))
    }

    fn del(p: &str) -> Update {
        Update::Delete(Delete::new(parse(p).unwrap()).unwrap())
    }

    /// Pads a minimal witness with irrelevant bulk, then checks that
    /// minimization strips it back down while preserving the conflict.
    fn bloat(w: &Tree) -> Tree {
        let mut big = w.clone();
        let noise = text::parse("pad1(pad2(pad3) pad4(pad5 pad6))").unwrap();
        let targets: Vec<NodeId> = big.nodes().collect();
        for n in targets {
            big.graft(n, &noise);
        }
        big.clear_mods();
        big
    }

    #[test]
    fn minimizes_insert_witness() {
        let r = read("x//C");
        let u = ins("x/B", "C");
        let w = bloat(&text::parse("x(B)").unwrap());
        assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
        let small = minimize(&r, &u, &w, Semantics::Node).unwrap();
        assert!(witnesses_update_conflict(&r, &u, &small, Semantics::Node));
        assert!(small.live_count() < w.live_count());
        assert!(small.live_count() <= crate::brute::lemma11_bound(&r, &u));
        assert_eq!(small.live_count(), 2, "minimal witness is x(B)");
    }

    #[test]
    fn minimizes_delete_witness() {
        let r = read("a//v");
        let u = del("a/b");
        let w = bloat(&text::parse("a(b(v))").unwrap());
        let small = minimize(&r, &u, &w, Semantics::Node).unwrap();
        assert!(witnesses_update_conflict(&r, &u, &small, Semantics::Node));
        assert_eq!(small.live_count(), 3);
    }

    #[test]
    fn reparenting_long_chains() {
        // Witness with a needlessly deep chain between read nodes: the
        // read a//v matched through 10 intermediates gets reparented to
        // k+1 = 1 alpha node.
        let r = read("a//v");
        let u = del("a//b[q]");
        let mut chain = String::from("b(q v)");
        for i in 0..10 {
            chain = format!("mid{i}({chain})");
        }
        let w = text::parse(&format!("a({chain})")).unwrap();
        assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
        let small = minimize(&r, &u, &w, Semantics::Node).unwrap();
        assert!(witnesses_update_conflict(&r, &u, &small, Semantics::Node));
        assert!(
            small.live_count() <= 6,
            "10-node chain must collapse, got {small:?}"
        );
    }

    #[test]
    fn rejects_non_witness() {
        let r = read("x//C");
        let u = ins("x/B", "C");
        let not_witness = text::parse("x(D)").unwrap();
        assert!(minimize(&r, &u, &not_witness, Semantics::Node).is_none());
    }

    #[test]
    fn star_length_keeps_longer_chains() {
        // Read with star-length 2: reparent chains must keep k+1 = 3
        // alpha nodes so no *-chain can bridge a gap it couldn't before.
        let r = read("a/*/*/v");
        let u = del("a//b");
        // Witness: v at depth 3 under a, with b as the first step.
        let w = text::parse("a(b(m(v)))").unwrap();
        assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
        let small = minimize(&r, &u, &w, Semantics::Node).unwrap();
        assert!(witnesses_update_conflict(&r, &u, &small, Semantics::Node));
    }

    #[test]
    fn minimized_respects_lemma11_bound_randomized() {
        // For every brute-force witness over a case battery, minimization
        // keeps the conflict and lands within the Lemma 11 bound.
        let cases: Vec<(&str, Update)> = vec![
            ("x//C", ins("x/B", "C")),
            ("a/b/c", ins("a/b", "c")),
            ("a//f", ins("a/b", "x(y(f))")),
            ("a//v", del("a/b")),
            ("a/b//v", del("a/b/u")),
            ("a/*/c", del("a/q")),
        ];
        for (r_src, u) in cases {
            let r = read(r_src);
            let SearchOutcome::Conflict(w) =
                find_witness(&r, &u, Semantics::Node, Budget::default())
            else {
                panic!("{r_src}: expected a conflict")
            };
            let big = bloat(&w);
            let small = minimize(&r, &u, &big, Semantics::Node).unwrap();
            assert!(
                witnesses_update_conflict(&r, &u, &small, Semantics::Node),
                "{r_src}"
            );
            assert!(small.live_count() <= crate::brute::lemma11_bound(&r, &u));
            assert!(small.live_count() <= w.live_count() + 2);
        }
    }
}
