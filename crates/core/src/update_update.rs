//! Update-update conflicts (§6, "Complex Updates") — an extension.
//!
//! The paper defines (informally) that two updates `o₁, o₂` conflict if
//! some tree `t` has `o₁(o₂(t)) ≠ o₂(o₁(t))`, observes that
//! reference-based semantics are awkward here (the two orders insert
//! *different clones* of `X`, so node equality is meaningless), and
//! settles on **value-based** comparison: the results must be isomorphic.
//! It conjectures NP-completeness via the same reduction machinery.
//!
//! This module implements the witness check (`commute_on`) and a bounded
//! exhaustive search (`find_noncommuting_witness`), mirroring
//! [`crate::brute`]. The §6 observation that identical insertions ought
//! not to conflict falls out of the isomorphism comparison for free.

use cxu_ops::Update;
use cxu_runtime::{failpoints, Deadline};
use cxu_tree::enumerate::{count_trees, enumerate_trees};
use cxu_tree::{iso, Symbol, Tree};

/// Do `u1` and `u2` commute on `t` up to isomorphism —
/// `u₁(u₂(t)) ≅ u₂(u₁(t))`?
pub fn commute_on(u1: &Update, u2: &Update, t: &Tree) -> bool {
    let mut t12 = t.clone();
    u2.apply(&mut t12);
    u1.apply(&mut t12);
    let mut t21 = t.clone();
    u1.apply(&mut t21);
    u2.apply(&mut t21);
    iso::isomorphic(&t12, &t21)
}

/// Budget for the exhaustive non-commutativity search.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum witness size (nodes).
    pub max_nodes: usize,
    /// Abort beyond this many candidates.
    pub max_trees: u128,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_nodes: 5,
            max_trees: 2_000_000,
        }
    }
}

/// Result of the bounded search.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A tree on which the two orders produce non-isomorphic results.
    Conflict(Tree),
    /// No witness within the size bound.
    NoConflictWithin(usize),
    /// Candidate count exceeded the budget.
    BudgetExceeded(u128),
    /// The deadline expired (or the cancel token fired) mid-search.
    DeadlineExceeded,
}

/// The joint alphabet: both patterns, both inserted trees, one fresh.
fn alphabet(u1: &Update, u2: &Update) -> Vec<Symbol> {
    let mut alpha = u1.pattern().alphabet();
    alpha.extend(u2.pattern().alphabet());
    for u in [u1, u2] {
        if let Update::Insert(i) = u {
            alpha.extend(i.subtree().alphabet());
        }
    }
    alpha.sort_unstable();
    alpha.dedup();
    alpha.push(Symbol::fresh("alpha", &alpha));
    alpha
}

/// Searches for a tree on which `u1` and `u2` fail to commute.
pub fn find_noncommuting_witness(u1: &Update, u2: &Update, budget: Budget) -> Outcome {
    find_noncommuting_witness_deadline(u1, u2, budget, &Deadline::never())
}

/// [`find_noncommuting_witness`] with a cooperative deadline, polled
/// once per candidate tree.
pub fn find_noncommuting_witness_deadline(
    u1: &Update,
    u2: &Update,
    budget: Budget,
    deadline: &Deadline,
) -> Outcome {
    let t0 = std::time::Instant::now();
    let out = find_noncommuting_witness_inner(u1, u2, budget, deadline);
    cxu_obs::counter!("core.uu_search.searches").inc();
    cxu_obs::histogram!("core.uu_search.ns").record_since(t0);
    let outcome = match &out {
        Outcome::Conflict(_) => {
            cxu_obs::counter!("core.uu_search.conflict").inc();
            "conflict"
        }
        Outcome::NoConflictWithin(_) => {
            cxu_obs::counter!("core.uu_search.no_conflict").inc();
            "no-conflict"
        }
        Outcome::BudgetExceeded(_) => {
            cxu_obs::counter!("core.uu_search.budget").inc();
            "budget"
        }
        Outcome::DeadlineExceeded => {
            cxu_obs::counter!("core.uu_search.deadline").inc();
            "deadline"
        }
    };
    if cxu_obs::trace::enabled() {
        cxu_obs::trace::event("core.uu_search", &[("outcome", outcome.into())]);
    }
    out
}

fn find_noncommuting_witness_inner(
    u1: &Update,
    u2: &Update,
    budget: Budget,
    deadline: &Deadline,
) -> Outcome {
    let alpha = alphabet(u1, u2);
    let n = count_trees(alpha.len(), budget.max_nodes);
    if n > budget.max_trees || failpoints::fire("uu::search") {
        return Outcome::BudgetExceeded(n);
    }
    for t in enumerate_trees(&alpha, budget.max_nodes) {
        if deadline.poll() {
            return Outcome::DeadlineExceeded;
        }
        if !commute_on(u1, u2, &t) {
            return Outcome::Conflict(t);
        }
    }
    Outcome::NoConflictWithin(budget.max_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::{Delete, Insert};
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn ins(p: &str, x: &str) -> Update {
        Update::Insert(Insert::new(parse(p).unwrap(), text::parse(x).unwrap()))
    }

    fn del(p: &str) -> Update {
        Update::Delete(Delete::new(parse(p).unwrap()).unwrap())
    }

    #[test]
    fn identical_inserts_commute() {
        // §6: two identical insertions must not conflict under value
        // semantics.
        let u = ins("a/b", "x");
        let t = text::parse("a(b b)").unwrap();
        assert!(commute_on(&u, &u, &t));
        assert!(matches!(
            find_noncommuting_witness(&u, &u, Budget::default()),
            Outcome::NoConflictWithin(_)
        ));
    }

    #[test]
    fn insert_enables_insert() {
        // u1 inserts c under a/b; u2 inserts q under a/b/c: order matters
        // (u2 first finds no c).
        let u1 = ins("a/b", "c");
        let u2 = ins("a/b/c", "q");
        let t = text::parse("a(b)").unwrap();
        assert!(!commute_on(&u1, &u2, &t));
        assert!(matches!(
            find_noncommuting_witness(&u1, &u2, Budget::default()),
            Outcome::Conflict(_)
        ));
    }

    #[test]
    fn delete_insert_commute_when_delete_subsumes() {
        // Deleting a/b vs inserting under a/b: whichever order runs, the
        // whole b subtree (fresh x included) is gone — they commute.
        let u1 = del("a/b");
        let u2 = ins("a/b", "x");
        let t = text::parse("a(b)").unwrap();
        assert!(commute_on(&u1, &u2, &t));
        assert!(matches!(
            find_noncommuting_witness(&u1, &u2, Budget::default()),
            Outcome::NoConflictWithin(_)
        ));
    }

    #[test]
    fn delete_insert_conflict_inside_target() {
        // u1 deletes a/b/x; u2 inserts x under a/b. Insert-then-delete
        // strips the fresh x; delete-then-insert leaves it.
        let u1 = del("a/b/x");
        let u2 = ins("a/b", "x");
        let t = text::parse("a(b)").unwrap();
        assert!(!commute_on(&u1, &u2, &t));
        assert!(matches!(
            find_noncommuting_witness(&u1, &u2, Budget::default()),
            Outcome::Conflict(_)
        ));
    }

    #[test]
    fn disjoint_updates_commute() {
        let u1 = ins("a/b", "x");
        let u2 = del("a/c");
        assert!(matches!(
            find_noncommuting_witness(&u1, &u2, Budget::default()),
            Outcome::NoConflictWithin(_)
        ));
    }

    #[test]
    fn delete_delete_nested() {
        // u1 deletes a/b, u2 deletes a/b/c: u1 subsumes u2's target;
        // both orders end with b gone — commutes.
        let u1 = del("a/b");
        let u2 = del("a/b/c");
        assert!(matches!(
            find_noncommuting_witness(&u1, &u2, Budget::default()),
            Outcome::NoConflictWithin(_)
        ));
    }

    #[test]
    fn insert_then_delete_of_inserted_shape() {
        // u1 inserts x under b; u2 deletes all b/x: insert-then-delete
        // removes the fresh x, delete-then-insert leaves one.
        let u1 = ins("a/b", "x");
        let u2 = del("a/b/x");
        let t = text::parse("a(b)").unwrap();
        assert!(!commute_on(&u1, &u2, &t));
    }

    #[test]
    fn budget_exceeded() {
        let u1 = ins("a/b", "x");
        let u2 = ins("c/d", "y");
        let out = find_noncommuting_witness(
            &u1,
            &u2,
            Budget {
                max_nodes: 10,
                max_trees: 5,
            },
        );
        assert!(matches!(out, Outcome::BudgetExceeded(_)));
    }

    #[test]
    fn deadline_exceeded() {
        let u1 = ins("a/b", "x");
        let u2 = del("a/c");
        let dl = Deadline::after(std::time::Duration::ZERO);
        let out = find_noncommuting_witness_deadline(&u1, &u2, Budget::default(), &dl);
        assert!(matches!(out, Outcome::DeadlineExceeded));
    }

    #[test]
    fn self_delete_commutes() {
        let u = del("a//b");
        assert!(matches!(
            find_noncommuting_witness(&u, &u, Budget::default()),
            Outcome::NoConflictWithin(_)
        ));
    }
}
