//! Incremental maintenance of linear read results across updates.
//!
//! A compiler that has proved two operations *conflicting* still wants to
//! avoid re-running the read from scratch after the update. For **linear**
//! reads the fragment's monotonicity gives exact delta rules:
//!
//! * **insert**: an existing node's membership in `⟦p⟧(t)` depends only
//!   on its root path, which insertion never changes — so old results
//!   stay; new results live strictly inside the freshly grafted copies.
//!   For each insertion point `u` we run the `ℛ(p)` automaton down the
//!   (unchanged) path `ROOT(t) → u` once, then push the surviving state
//!   sets into the copy of `X` — `O(depth·|p| + |X|·|p|)` per point,
//!   independent of `|t|`.
//! * **delete**: no new matches can appear (monotonicity), and lost
//!   matches are exactly the results inside deleted regions — filter by
//!   liveness, `O(|result|·depth)`.
//!
//! This mirrors the incremental-validation line of work the paper cites
//! (\[3, 14\]) transplanted to query results, and is exactly the
//! "re-extract the D descendants while scanning for A" optimization §1
//! gestures at. Cross-validated against full re-evaluation by property
//! tests; benchmarked as E14.

use crate::matching::to_steps;
use cxu_automata::{Label, Step};
use cxu_ops::{Delete, Insert, Read};
use cxu_pattern::eval;
use cxu_tree::{NodeId, Symbol, Tree};

/// A linear read whose result set is maintained across updates.
///
/// The wrapped tree evolves outside this struct; callers route every
/// update through [`IncrementalRead::apply_insert`] /
/// [`IncrementalRead::apply_delete`] (applying updates behind its back
/// desynchronizes the cache — as with any materialized view).
pub struct IncrementalRead {
    read: Read,
    steps: Vec<Step<Symbol>>,
    result: Vec<NodeId>,
}

impl IncrementalRead {
    /// Evaluates `read` on `t` once and caches the result. The read
    /// pattern must be linear.
    pub fn new(read: Read, t: &Tree) -> Result<IncrementalRead, crate::DetectError> {
        if !read.pattern().is_linear() {
            return Err(crate::DetectError::ReadNotLinear);
        }
        let steps = to_steps(read.pattern());
        let result = read.eval(t);
        Ok(IncrementalRead {
            read,
            steps,
            result,
        })
    }

    /// The maintained result set (sorted node ids).
    pub fn result(&self) -> &[NodeId] {
        &self.result
    }

    /// The underlying read.
    pub fn read(&self) -> &Read {
        &self.read
    }

    /// Advances an `ℛ(p)` state set over one letter. State `i` means `i`
    /// steps consumed; step `i+1`'s gap allows staying put.
    fn advance(&self, states: &[bool], letter: Symbol) -> Vec<bool> {
        let m = self.steps.len();
        let mut next = vec![false; m + 1];
        for (i, &alive) in states.iter().enumerate() {
            if !alive {
                continue;
            }
            if i < m {
                let step = &self.steps[i];
                let fires = match step.label {
                    Label::Any => true,
                    Label::Sym(s) => s == letter,
                };
                if fires {
                    next[i + 1] = true;
                }
                if step.gap {
                    next[i] = true;
                }
            }
        }
        next
    }

    /// State set after reading the labels on the path from the root down
    /// to (and including) `n`.
    fn states_at(&self, t: &Tree, n: NodeId) -> Vec<bool> {
        let mut path: Vec<NodeId> = t.ancestors(n).collect();
        path.reverse();
        path.push(n);
        let mut states = vec![false; self.steps.len() + 1];
        states[0] = true;
        for node in path {
            states = self.advance(&states, t.label(node));
        }
        states
    }

    /// Applies the insertion to `t` and updates the cached result. The
    /// maintenance step itself ([`IncrementalRead::note_insert`]) costs
    /// time proportional to the update (point depths + copy sizes), not
    /// to `|t|`; finding the insertion points is the update's own cost.
    pub fn apply_insert(&mut self, t: &mut Tree, ins: &Insert) {
        let pairs = ins.apply_indexed(t);
        self.note_insert(t, &pairs);
    }

    /// Folds already-applied insertions into the cached result. `pairs`
    /// is `(insertion point, copy root)` as returned by
    /// [`Insert::apply_indexed`].
    pub fn note_insert(&mut self, t: &Tree, pairs: &[(NodeId, NodeId)]) {
        let m = self.steps.len();
        let pairs = pairs.to_vec();
        let mut fresh: Vec<NodeId> = Vec::new();
        for (point, copy_root) in pairs {
            // The path to `point` consists of pre-insert nodes only, so
            // the state set there is unaffected by this update.
            let states = self.states_at(t, point);
            // Push states down the copy.
            let mut stack = vec![(copy_root, states)];
            while let Some((node, incoming)) = stack.pop() {
                let here = self.advance(&incoming, t.label(node));
                if here[m] {
                    fresh.push(node);
                }
                if here.iter().take(m).any(|&b| b) {
                    for &c in t.children(node) {
                        stack.push((c, here.clone()));
                    }
                }
            }
        }
        if !fresh.is_empty() {
            self.result.extend(fresh);
            self.result.sort_unstable();
            self.result.dedup();
        }
    }

    /// Applies the deletion to `t` and updates the cached result: linear
    /// matches only disappear (with their subtrees); none appear.
    pub fn apply_delete(&mut self, t: &mut Tree, del: &Delete) {
        del.apply(t);
        self.result.retain(|&n| t.is_alive(n));
    }

    /// Full re-evaluation — the oracle the incremental path must match.
    pub fn recompute(&mut self, t: &Tree) -> &[NodeId] {
        self.result = eval::eval(self.read.pattern(), t);
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::Read;
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn read(p: &str) -> Read {
        Read::new(parse(p).unwrap())
    }

    fn ins(p: &str, x: &str) -> Insert {
        Insert::new(parse(p).unwrap(), text::parse(x).unwrap())
    }

    fn del(p: &str) -> Delete {
        Delete::new(parse(p).unwrap()).unwrap()
    }

    #[test]
    fn insert_adds_matches_inside_copy() {
        let mut t = text::parse("a(b)").unwrap();
        let mut inc = IncrementalRead::new(read("a//f"), &t).unwrap();
        assert!(inc.result().is_empty());
        inc.apply_insert(&mut t, &ins("a/b", "x(y(f))"));
        assert_eq!(inc.result().len(), 1);
        assert_eq!(
            inc.result(),
            eval::eval(inc.read().pattern(), &t).as_slice()
        );
    }

    #[test]
    fn insert_no_spurious_matches() {
        let mut t = text::parse("a(b)").unwrap();
        let mut inc = IncrementalRead::new(read("a/f"), &t).unwrap();
        inc.apply_insert(&mut t, &ins("a/b", "f")); // f at depth 2, read wants depth 1
        assert!(inc.result().is_empty());
    }

    #[test]
    fn insert_at_multiple_points() {
        let mut t = text::parse("a(b b b)").unwrap();
        let mut inc = IncrementalRead::new(read("a/b/c"), &t).unwrap();
        inc.apply_insert(&mut t, &ins("a/b", "c"));
        assert_eq!(inc.result().len(), 3);
        assert_eq!(
            inc.result(),
            eval::eval(inc.read().pattern(), &t).as_slice()
        );
    }

    #[test]
    fn gap_states_descend_into_copy() {
        // Read a//m//f: first gap consumed above, second inside the copy.
        let mut t = text::parse("a(x(m(b)))").unwrap();
        let mut inc = IncrementalRead::new(read("a//m//f"), &t).unwrap();
        inc.apply_insert(&mut t, &ins("a/x/m/b", "q(w(f))"));
        assert_eq!(inc.result().len(), 1);
        assert_eq!(
            inc.result(),
            eval::eval(inc.read().pattern(), &t).as_slice()
        );
    }

    #[test]
    fn delete_filters_dead_results() {
        let mut t = text::parse("a(b(v) c(v))").unwrap();
        let mut inc = IncrementalRead::new(read("a//v"), &t).unwrap();
        assert_eq!(inc.result().len(), 2);
        inc.apply_delete(&mut t, &del("a/b"));
        assert_eq!(inc.result().len(), 1);
        assert_eq!(
            inc.result(),
            eval::eval(inc.read().pattern(), &t).as_slice()
        );
    }

    #[test]
    fn mixed_update_sequence_matches_oracle() {
        let mut t = text::parse("a(b(v) c)").unwrap();
        let mut inc = IncrementalRead::new(read("a//v"), &t).unwrap();
        let script: Vec<(bool, &str, &str)> = vec![
            (true, "a/c", "v"),
            (true, "a//v", "w"),
            (false, "a/b", ""),
            (true, "a/c", "x(v)"),
            (false, "a/c/v", ""),
        ];
        for (is_insert, p, x) in script {
            if is_insert {
                inc.apply_insert(&mut t, &ins(p, x));
            } else {
                inc.apply_delete(&mut t, &del(p));
            }
            assert_eq!(
                inc.result(),
                eval::eval(inc.read().pattern(), &t).as_slice(),
                "after {p}"
            );
        }
    }

    #[test]
    fn wildcard_read_maintained() {
        let mut t = text::parse("a(b)").unwrap();
        let mut inc = IncrementalRead::new(read("a/*/*"), &t).unwrap();
        inc.apply_insert(&mut t, &ins("a/b", "anything"));
        assert_eq!(inc.result().len(), 1);
        assert_eq!(
            inc.result(),
            eval::eval(inc.read().pattern(), &t).as_slice()
        );
    }

    #[test]
    fn branching_read_rejected() {
        let t = text::parse("a(b)").unwrap();
        assert!(IncrementalRead::new(read("a[q]/b"), &t).is_err());
    }

    #[test]
    fn insert_matching_nothing_is_cheap_noop() {
        let mut t = text::parse("a(b)").unwrap();
        let mut inc = IncrementalRead::new(read("a/b"), &t).unwrap();
        let before = inc.result().to_vec();
        inc.apply_insert(&mut t, &ins("zzz/q", "x"));
        assert_eq!(inc.result(), before.as_slice());
    }
}
