//! # cxu-core — conflict detection for XML updates
//!
//! The primary contribution of *Conflicting XML Updates* (Raghavachari &
//! Shmueli): deciding, **over all trees**, whether a read conflicts with
//! an update.
//!
//! | read pattern | update pattern | complexity | entry point |
//! |---|---|---|---|
//! | linear `P^{//,*}` | any `P^{//,[],*}` | PTIME (§4) | [`detect`] |
//! | branching `P^{//,[],*}` | any | NP-complete (§5) | [`brute`] |
//!
//! Supporting machinery:
//!
//! * [`matching`] — weak/strong matching of linear patterns
//!   (Definition 7), via NFA intersection and via the all-prefixes
//!   dynamic program;
//! * [`witness_min`] — witness minimization by marking + reparenting
//!   (Definitions 9–10, Lemmas 9–11);
//! * [`reduction`] — the NP-hardness reductions from XPath
//!   non-containment (Theorems 4 and 6);
//! * [`update_update`] — §6's update-update commutativity conflicts
//!   (value semantics), an extension the paper sketches.
//!
//! ```
//! use cxu_core::detect;
//! use cxu_ops::{Insert, Read, Semantics};
//! use cxu_pattern::xpath;
//! use cxu_tree::text;
//!
//! // §1: `read $x//C` conflicts with `insert $x/B, <C/>` …
//! let r = Read::new(xpath::parse("x//C").unwrap());
//! let i = Insert::new(xpath::parse("x/B").unwrap(), text::parse("C").unwrap());
//! assert!(detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap());
//!
//! // … while `read $x//D` is independent of it and may be reordered.
//! let r2 = Read::new(xpath::parse("x//D").unwrap());
//! assert!(!detect::read_insert_conflict(&r2, &i, Semantics::Node).unwrap());
//! ```

pub use cxu_runtime as runtime;

pub mod brute;
pub mod construct;
pub mod detect;
pub mod incremental;
pub mod matching;
pub mod reduction;
pub mod update_update;
pub mod update_update_linear;
pub mod witness_min;

pub use detect::{read_delete_conflict, read_insert_conflict, read_update_conflict, DetectError};
