//! Cooperative deadlines and cancellation.
//!
//! A [`Deadline`] is a cheap handle the expensive searches poll from
//! inside their hot loops: [`Deadline::poll`] is a counter increment on
//! most calls and only consults the clock every [`POLL_STRIDE`]
//! iterations, so threading it through a per-candidate loop costs
//! almost nothing. A [`CancelToken`] is a shared flag that lets a
//! caller (another thread, a timeout watchdog, an RPC handler whose
//! client hung up) abandon every search holding a deadline built from
//! it.
//!
//! The handle is *cooperative*: a search that never polls is never
//! interrupted. Every NP-side search in the workspace polls once per
//! candidate, which bounds overrun by the cost of a single witness
//! check.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many [`Deadline::poll`] calls elapse between clock reads. The
/// first poll always checks, so a zero deadline trips immediately.
pub const POLL_STRIDE: u32 = 64;

/// Marker for "the deadline expired or the token was cancelled".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("deadline exceeded or operation cancelled")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// A shared cancellation flag. Cloning is cheap (an `Arc` bump); all
/// clones observe the same flag. Cancellation is one-way and sticky.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Cancels every deadline built from this token. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A cooperative deadline: an optional wall-clock cutoff plus an
/// optional [`CancelToken`], polled from inside search loops.
///
/// Not `Sync` (the poll stride uses a `Cell`); build one per worker —
/// they can all share one `CancelToken`.
#[derive(Clone, Debug)]
pub struct Deadline {
    at: Option<Instant>,
    token: Option<CancelToken>,
    polls: Cell<u32>,
    /// Has this handle already reported its expiry/cancellation to the
    /// observability layer? Transition events fire once per handle.
    tripped: Cell<bool>,
}

impl Default for Deadline {
    fn default() -> Deadline {
        Deadline::never()
    }
}

impl Deadline {
    /// A deadline that never expires (polls short-circuit to `false`).
    pub fn never() -> Deadline {
        Deadline {
            at: None,
            token: None,
            polls: Cell::new(0),
            tripped: Cell::new(false),
        }
    }

    /// Expires `timeout` from now.
    pub fn after(timeout: Duration) -> Deadline {
        Deadline::at(Instant::now() + timeout)
    }

    /// Expires at the given instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline {
            at: Some(instant),
            token: None,
            polls: Cell::new(0),
            tripped: Cell::new(false),
        }
    }

    /// Attaches a cancellation token: the deadline also reports
    /// exceeded once the token is cancelled.
    pub fn with_token(mut self, token: &CancelToken) -> Deadline {
        self.token = Some(token.clone());
        self
    }

    /// True when neither a cutoff nor a token is attached — polling is
    /// then free and the search runs to completion.
    pub fn is_unbounded(&self) -> bool {
        self.at.is_none() && self.token.is_none()
    }

    /// The full check: cancelled token, or cutoff in the past. Reads
    /// the clock; prefer [`Deadline::poll`] in hot loops.
    ///
    /// Observability: every full check bumps `runtime.deadline.checks`;
    /// the first check that trips bumps `runtime.cancel.observed` or
    /// `runtime.deadline.expired` (by cause) and emits a
    /// `runtime.deadline.tripped` trace event. Unbounded handles skip
    /// all of it.
    pub fn exceeded(&self) -> bool {
        if self.is_unbounded() {
            return false;
        }
        cxu_obs::counter!("runtime.deadline.checks").inc();
        let cancelled = self.token.as_ref().is_some_and(|t| t.is_cancelled());
        let expired = cancelled || matches!(self.at, Some(at) if Instant::now() >= at);
        if expired && !self.tripped.get() {
            self.tripped.set(true);
            if cancelled {
                cxu_obs::counter!("runtime.cancel.observed").inc();
            } else {
                cxu_obs::counter!("runtime.deadline.expired").inc();
            }
            cxu_obs::trace::event(
                "runtime.deadline.tripped",
                &[(
                    "cause",
                    if cancelled { "cancel" } else { "deadline" }.into(),
                )],
            );
        }
        expired
    }

    /// The strided check for hot loops: consults the clock on the
    /// first call and every [`POLL_STRIDE`]th call after, otherwise
    /// just increments a counter. Once a check trips, every later poll
    /// keeps returning `true` (expiry is sticky via the clock/token).
    pub fn poll(&self) -> bool {
        if self.is_unbounded() {
            return false;
        }
        let n = self.polls.get().wrapping_add(1);
        self.polls.set(n);
        if n % POLL_STRIDE == 1 {
            self.exceeded()
        } else {
            false
        }
    }

    /// [`Deadline::poll`] as a `Result`, for `?`-style early exit.
    pub fn check(&self) -> Result<(), DeadlineExceeded> {
        if self.poll() {
            Err(DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_trips() {
        let dl = Deadline::never();
        assert!(dl.is_unbounded());
        for _ in 0..10_000 {
            assert!(!dl.poll());
        }
        assert!(!dl.exceeded());
    }

    #[test]
    fn zero_deadline_trips_on_first_poll() {
        let dl = Deadline::after(Duration::ZERO);
        assert!(dl.poll(), "first poll must consult the clock");
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let dl = Deadline::after(Duration::from_secs(3600));
        for _ in 0..1000 {
            assert!(!dl.poll());
        }
    }

    #[test]
    fn token_cancels_mid_search() {
        let token = CancelToken::new();
        let dl = Deadline::never().with_token(&token);
        assert!(!dl.is_unbounded());
        assert!(!dl.poll());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(dl.exceeded());
        // The strided poll sees it within one stride.
        assert!((0..=u64::from(POLL_STRIDE)).any(|_| dl.poll()));
    }

    #[test]
    fn token_is_shared_across_clones() {
        let token = CancelToken::new();
        let other = token.clone();
        other.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn check_maps_to_result() {
        assert_eq!(Deadline::never().check(), Ok(()));
        assert_eq!(
            Deadline::after(Duration::ZERO).check(),
            Err(DeadlineExceeded)
        );
    }
}
