//! # cxu-runtime — robustness primitives for the detection stack
//!
//! The paper's §5 results make worst-case pairwise detection
//! NP-complete, so a production deployment must survive pathological
//! inputs without stalling a batch or crashing a worker. This crate
//! holds the two facilities the rest of the workspace threads through
//! its expensive searches:
//!
//! * [`Deadline`] / [`CancelToken`] — a cheap cooperative handle polled
//!   inside enumeration loops. A node budget bounds *work*; a deadline
//!   bounds *wall-clock*; a token lets a caller abandon a batch early.
//!   Every detector entry point gains a `*_deadline` variant that
//!   returns a `DeadlineExceeded` outcome instead of running away.
//! * [`failpoints`] — a deterministic, feature-gated fault-injection
//!   facility (inject panic / slowdown / forced budget exhaustion at
//!   named sites, keyed by a seeded RNG), used by the stress suite to
//!   prove the scheduler degrades instead of aborting.
//!
//! The crate has no dependencies and sits below every other workspace
//! crate, so `cxu-pattern`, `cxu-core`, `cxu-schema`, and `cxu-sched`
//! can all share the same handle type.

pub mod deadline;
pub mod failpoints;

pub use deadline::{CancelToken, Deadline, DeadlineExceeded};
