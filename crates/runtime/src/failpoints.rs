//! Deterministic fault injection at named sites, feature-gated.
//!
//! With the `failpoints` feature **off** (the default), [`fire`] is an
//! inlined `false` constant — call sites in the detectors and the
//! scheduler compile to nothing. With the feature **on**, a process can
//! [`arm`] a [`Plan`]: every time execution passes a named site, a
//! SplitMix64 stream keyed by `(seed, site, per-site hit counter)`
//! decides whether to inject a panic, a slowdown, or a forced budget
//! exhaustion. Given a seed and a serial execution, the injected fault
//! sequence is fully deterministic — which is what lets CI replay a
//! fixed seed matrix.
//!
//! Sites currently wired in:
//!
//! | site | crate | faults observed |
//! |---|---|---|
//! | `sched::pair`   | cxu-sched  | panic, sleep, exhaust (pre-analysis) |
//! | `brute::search` | cxu-core   | panic, sleep, exhaust (witness search) |
//! | `uu::search`    | cxu-core   | panic, sleep, exhaust (commutation search) |
//! | `schema::search`| cxu-schema | panic, sleep, exhaust (conforming search) |
//! | `serve::request`| cxu-serve  | panic, sleep (worker request handling) |
//! | `store::wal::append` | cxu-store | exhaust ⇒ injected append error |
//! | `store::wal::short_write` | cxu-store | exhaust ⇒ half-written frame, log poisoned |
//! | `store::wal::sync` | cxu-store | exhaust ⇒ injected fsync error |
//!
//! The `store::wal::*` sites reinterpret `ExhaustBudget` as "the disk
//! failed here" — the WAL turns the roll into an I/O error (and, for
//! `short_write`, a genuinely torn tail) instead of a budget verdict.

use std::time::Duration;

/// A fault injected at a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep this long before continuing (exercises deadlines).
    Sleep(Duration),
    /// Pretend the search budget is exhausted (exercises degradation).
    ExhaustBudget,
}

/// An injection plan: per-mille rates for each fault kind, evaluated
/// independently at every site hit. Rates are per-mille of all hits;
/// `panic + sleep + exhaust` must be ≤ 1000 (the rest inject nothing).
#[derive(Clone, Copy, Debug)]
pub struct Plan {
    /// RNG seed — same seed, same serial execution, same faults.
    pub seed: u64,
    /// Per-mille of hits that panic.
    pub panic_per_mille: u32,
    /// Per-mille of hits that sleep.
    pub sleep_per_mille: u32,
    /// Sleep duration for injected slowdowns.
    pub sleep_ms: u64,
    /// Per-mille of hits that force budget exhaustion.
    pub exhaust_per_mille: u32,
}

impl Default for Plan {
    fn default() -> Plan {
        Plan {
            seed: 0,
            panic_per_mille: 20,
            sleep_per_mille: 50,
            sleep_ms: 5,
            exhaust_per_mille: 50,
        }
    }
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{Fault, Plan};
    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::time::Duration;

    struct State {
        plan: Plan,
        counters: HashMap<String, u64>,
    }

    static STATE: Mutex<Option<State>> = Mutex::new(None);

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn site_hash(site: &str) -> u64 {
        // FNV-1a, good enough to separate a handful of site names.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in site.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Installs a plan (resetting all site counters).
    pub fn arm(plan: Plan) {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(State {
            plan,
            counters: HashMap::new(),
        });
    }

    /// Removes the active plan; sites stop injecting.
    pub fn disarm() {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        *guard = None;
    }

    /// Is a plan active?
    pub fn is_armed() -> bool {
        STATE.lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }

    /// Rolls the fault (if any) for this hit of `site`, advancing the
    /// site's counter. Does not act on it.
    pub fn decide(site: &str) -> Option<Fault> {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        let state = guard.as_mut()?;
        let counter = state.counters.entry(site.to_owned()).or_insert(0);
        let hit = *counter;
        *counter += 1;
        let plan = state.plan;
        drop(guard); // never panic/sleep while holding the lock
        let roll = splitmix64(plan.seed ^ site_hash(site) ^ hit.wrapping_mul(0x9E37)) % 1000;
        let roll = roll as u32;
        if roll < plan.panic_per_mille {
            Some(Fault::Panic)
        } else if roll < plan.panic_per_mille + plan.sleep_per_mille {
            Some(Fault::Sleep(Duration::from_millis(plan.sleep_ms)))
        } else if roll < plan.panic_per_mille + plan.sleep_per_mille + plan.exhaust_per_mille {
            Some(Fault::ExhaustBudget)
        } else {
            None
        }
    }

    /// Evaluates the site: panics or sleeps as planned; returns `true`
    /// iff a forced budget exhaustion was injected.
    pub fn fire(site: &str) -> bool {
        match decide(site) {
            Some(Fault::Panic) => panic!("injected failpoint panic at {site}"),
            Some(Fault::Sleep(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(Fault::ExhaustBudget) => true,
            None => false,
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{arm, decide, disarm, fire, is_armed};

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::{Fault, Plan};

    /// No-op without the `failpoints` feature.
    pub fn arm(_plan: Plan) {}

    /// No-op without the `failpoints` feature.
    pub fn disarm() {}

    /// Always `false` without the `failpoints` feature.
    pub fn is_armed() -> bool {
        false
    }

    /// Always `None` without the `failpoints` feature.
    pub fn decide(_site: &str) -> Option<Fault> {
        None
    }

    /// Always `false` without the `failpoints` feature.
    #[inline(always)]
    pub fn fire(_site: &str) -> bool {
        false
    }
}

#[cfg(not(feature = "failpoints"))]
pub use imp::{arm, decide, disarm, fire, is_armed};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // All failpoint state is process-global; keep tests serialized.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn plan(seed: u64) -> Plan {
        Plan {
            seed,
            panic_per_mille: 0, // keep the unit tests panic-free
            sleep_per_mille: 0,
            sleep_ms: 0,
            exhaust_per_mille: 300,
        }
    }

    #[test]
    fn same_seed_same_faults() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        arm(plan(42));
        let first: Vec<Option<Fault>> = (0..100).map(|_| decide("t::site")).collect();
        arm(plan(42));
        let second: Vec<Option<Fault>> = (0..100).map(|_| decide("t::site")).collect();
        disarm();
        assert_eq!(first, second);
        assert!(first.iter().any(Option::is_some), "rate 300‰ must fire");
        assert!(first.iter().any(Option::is_none));
    }

    #[test]
    fn different_seeds_differ() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        arm(plan(1));
        let a: Vec<Option<Fault>> = (0..200).map(|_| decide("t::seed")).collect();
        arm(plan(2));
        let b: Vec<Option<Fault>> = (0..200).map(|_| decide("t::seed")).collect();
        disarm();
        assert_ne!(a, b);
    }

    #[test]
    fn disarmed_is_silent() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        assert!(!is_armed());
        assert!((0..100).all(|_| decide("t::off").is_none()));
        assert!(!fire("t::off"));
    }

    #[test]
    fn sites_are_independent_streams() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        arm(plan(7));
        let a: Vec<Option<Fault>> = (0..200).map(|_| decide("t::a")).collect();
        let b: Vec<Option<Fault>> = (0..200).map(|_| decide("t::b")).collect();
        disarm();
        assert_ne!(a, b, "distinct sites should roll distinct streams");
    }
}
