//! The store: named documents, MVCC puts, commutativity-aware merges,
//! and the monotonic changes feed.
//!
//! # The put ladder
//!
//! `put(doc, base_rev, payload)` climbs the following ladder, top rung
//! first; the ladder is the store's whole concurrency story:
//!
//! 1. **Create** (`base_rev` absent, payload is content): mint
//!    generation 1 — or, when the document's winner is a tombstone,
//!    a child of that tombstone (resurrection keeps the history).
//! 2. **Fast path** (`base_rev` *is* the winner): apply the payload to
//!    the winner's content and commit a child. No detectors run.
//! 3. **Auto-merge** (stale base, operation payload): collect the
//!    updates on the chain from the base to the current winner and ask
//!    the routed pairwise detectors about each `(intervening, new)`
//!    pair. Only when *every* verdict is an **exact no-conflict** — the
//!    paper's commutativity criterion, decided by a non-conservative
//!    detector — is the new op applied on top of the winner. Exact
//!    no-conflict means the two updates commute on *every* document, so
//!    replaying the new op after the intervening ones is observationally
//!    equal to some serial order that ran it at its base: linearization
//!    holds without branching.
//! 4. **Branch** (anything else): commit the payload as a *sibling*
//!    child of the stale base and let the winner rule pick. Conflicting
//!    pairs branch because merging would silently drop one side's
//!    effect; **conservative verdicts branch too** — a degraded answer
//!    (budget, deadline, panic) only says the detectors *could not
//!    prove* commutation, and merging on a guess would trade
//!    correctness for convenience. Branching is always sound: both
//!    revisions survive, and the deterministic winner keeps every
//!    replica agreeing meanwhile.
//!
//! Rejections (unknown document, unknown base revision, creating over a
//! live document, updating a tombstone) are the ladder's floor — they
//! are *answers*, not failures, and the caller (cxu-serve) reports them
//! as such.
//!
//! Before any rung runs, a **replay** of an already-committed
//! `(base_rev, payload)` resolves to a noop at the originally minted
//! revision. Fast-path and branch commits are found by deriving the id
//! from the base; auto-merged commits minted their id from the
//! then-winner, so each document keeps an alias map from the
//! base-derived id to the merged rev — without it, a retried merged
//! put would re-enter the merge rung, prove the op commutes with
//! itself, and apply the edit twice.
//!
//! # Locking
//!
//! One mutex guards the whole store; detector calls run **outside** it
//! (rung 3 snapshots the chain, unlocks, checks, relocks, and verifies
//! the winner did not move — retrying a bounded number of times before
//! falling back to a branch). The store lock therefore never nests with
//! a scheduler lock, and a slow NP-side check cannot stall readers.
//!
//! # Metrics
//!
//! Every put lands in exactly one bucket of the partition
//! `store.puts == store.put.applied + store.put.merged +
//! store.put.branched + store.put.rejected + store.put.noop +
//! store.put.failed` (`applied` includes creations; `failed` is
//! incremented by the serving layer when a put dies before the store
//! can answer — inside this crate it never moves). `store.docs` and
//! `store.revisions` are gauges set to current levels by
//! [`Store::set_gauges`].

use crate::recovery::{self, RecoveryReport};
use crate::rev::RevId;
use crate::revtree::{RevNode, RevTree};
use crate::snapshot;
use crate::wal::{FsyncPolicy, Wal, WalError};
use cxu_gen::program::Stmt;
use cxu_gen::wire;
use cxu_index::DocIndex;
use cxu_ops::Update;
use cxu_sched::{Op, PairDecision};
use cxu_tree::{text, Tree};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Admission bound on distinct documents; creates beyond it are
    /// rejected (existing documents keep accepting puts).
    pub max_docs: usize,
    /// How many times a merge re-checks after losing the winner race
    /// before giving up and branching at the base (branching is always
    /// sound, so the bound only trades merge quality for liveness).
    pub merge_retries: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            max_docs: 100_000,
            merge_retries: 3,
        }
    }
}

/// Where and how a store persists. Absent (via [`Store::new`]) the
/// store is purely in-memory — the pre-durability behavior.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Data directory holding `wal.cxu` and `snapshot.cxu` (created if
    /// missing).
    pub dir: PathBuf,
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + WAL reset) once the log holds this many
    /// records; `0` disables automatic compaction. Bounds recovery
    /// time by live state plus one snapshot interval of records.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the conservative defaults:
    /// fsync on every append, compaction every 1024 records.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 1024,
        }
    }
}

/// What a put carries.
#[derive(Clone, Debug)]
pub enum PutPayload {
    /// Full document content: a creation (no base) or a replacement
    /// (with a base). Replacements never auto-merge — a whole-document
    /// write commutes with nothing.
    Content(Tree),
    /// An update operation, applied through `cxu-ops`; the only payload
    /// the auto-merge rung accepts.
    Op(Update),
    /// A tombstone (what `doc_delete` sends). Deletion of the whole
    /// document conflicts with every concurrent edit, so a stale-based
    /// tombstone always branches.
    Tombstone,
}

/// How a put landed (one bucket of the metric partition each).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PutResult {
    /// A fresh document (or resurrection over a tombstone winner).
    Created,
    /// Applied at the winner — the uncontended fast path.
    Applied,
    /// The identical revision already existed; nothing changed.
    Noop,
    /// Stale base, but every intervening pair provably commutes: the
    /// op was replayed on the winner, keeping a single head.
    Merged,
    /// Stale base and no proof of commutation: committed as a sibling
    /// of the base; the winner rule arbitrates.
    Branched,
}

impl PutResult {
    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            PutResult::Created => "created",
            PutResult::Applied => "applied",
            PutResult::Noop => "noop",
            PutResult::Merged => "merged",
            PutResult::Branched => "branched",
        }
    }
}

/// A successful put.
#[derive(Clone, Debug)]
pub struct PutOutcome {
    /// The revision this put minted (or found, for [`PutResult::Noop`]).
    pub rev: RevId,
    /// The document's winner after the put.
    pub winner: RevId,
    /// Whether that winner is a tombstone.
    pub winner_deleted: bool,
    /// Which rung of the ladder answered.
    pub result: PutResult,
    /// The document's position in the changes feed after the put.
    pub seq: u64,
    /// Detector pairs consulted (0 outside the merge rung).
    pub checked_pairs: usize,
}

/// A rejected request — an answer, not an internal failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The named document does not exist.
    NotFound(String),
    /// The named base revision is not in the document's revision tree.
    UnknownRev(String),
    /// The request contradicts the document's state (create over a live
    /// document, update of a tombstone, and similar).
    Conflict(String),
    /// The store's document admission bound is full.
    TooManyDocs,
    /// The write-ahead log could not make the commit durable; nothing
    /// was applied, the request can be retried.
    Io(String),
    /// The data directory's log or snapshot cannot be trusted; the
    /// store refuses to open rather than serve a state that disagrees
    /// with past acks.
    Corrupt(String),
}

impl StoreError {
    /// The wire `reason` code.
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::NotFound(_) => "not-found",
            StoreError::UnknownRev(_) => "unknown-rev",
            StoreError::Conflict(_) => "conflict",
            StoreError::TooManyDocs => "too-many-docs",
            StoreError::Io(_) => "io",
            StoreError::Corrupt(_) => "corrupt",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(d) => write!(f, "document {d:?} not found"),
            StoreError::UnknownRev(m) => write!(f, "{m}"),
            StoreError::Conflict(m) => write!(f, "{m}"),
            StoreError::TooManyDocs => write!(f, "document limit reached"),
            StoreError::Io(m) => write!(f, "durability failure: {m}"),
            StoreError::Corrupt(m) => write!(f, "data directory corrupt: {m}"),
        }
    }
}

fn from_wal(e: WalError) -> StoreError {
    match e {
        WalError::Io(m) => StoreError::Io(m),
        WalError::Corrupt(c) => StoreError::Corrupt(c.to_string()),
    }
}

impl std::error::Error for StoreError {}

/// What a get returns.
#[derive(Clone, Debug)]
pub struct GetResult {
    /// The revision read (the winner unless one was requested).
    pub rev: RevId,
    /// Whether it is a tombstone.
    pub deleted: bool,
    /// The content (`None` for tombstones).
    pub content: Option<Tree>,
    /// Open conflicts: losing live leaves (only when asked for).
    pub conflicts: Vec<RevId>,
    /// The document's position in the changes feed.
    pub seq: u64,
}

/// One row of the changes feed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChangeEntry {
    /// The document's current sequence number.
    pub seq: u64,
    /// Document id.
    pub doc: String,
    /// Current winner revision.
    pub rev: RevId,
    /// Whether the winner is a tombstone.
    pub deleted: bool,
}

/// The callback the merge rung uses to consult the detectors. Called
/// outside the store lock; `cxu-serve` backs it with
/// `Scheduler::check_pair` under the request's deadline.
pub type PairCheck<'a> = dyn FnMut(&Op, &Op) -> PairDecision + 'a;

/// Admission bound on operations per transaction: bounds the staged
/// state and the single WAL frame a transaction becomes.
pub const MAX_TXN_OPS: usize = 256;

/// One write of a transaction: an update operation against a named
/// document. Transactions edit *existing, live* documents — creation
/// and deletion stay single-op puts, because a whole-document write
/// commutes with nothing and gains nothing from transaction machinery.
#[derive(Clone, Debug)]
pub struct TxnWrite {
    /// Document id.
    pub doc: String,
    /// The operation, applied in transaction order.
    pub op: Update,
}

/// A snapshot-read guard: the transaction observed `rev` as a
/// document's winner and asks the store to hold it to that
/// observation. For a *written* document a stale guard may still
/// commit — when every operation that landed since provably commutes
/// with the transaction's own ops on it (the merge rung's criterion,
/// lifted to op sets). For a *read-only* document the guard demands
/// the winner still be exactly `rev`: there is no op of ours to
/// commute with, so any movement invalidates the read.
#[derive(Clone, Debug)]
pub struct TxnGuard {
    /// Document id.
    pub doc: String,
    /// The winner the transaction read its snapshot at.
    pub rev: RevId,
}

/// A committed (or replayed) transaction.
#[derive(Clone, Debug)]
pub struct TxnOutcome {
    /// One minted revision per write, in transaction order.
    pub revs: Vec<(String, RevId)>,
    /// The store's sequence after the commit (the last write's slot;
    /// unchanged for replays).
    pub seq: u64,
    /// Detector pairs consulted across all guard chains.
    pub checked_pairs: usize,
    /// True when the transaction was recognized as an idempotent
    /// retry of an already-committed transaction: `revs` holds the
    /// originally minted revisions and nothing new was committed.
    pub replayed: bool,
}

/// Why a transaction did not commit. Nothing was applied either way —
/// a transaction's effects are all-or-nothing by construction.
#[derive(Clone, Debug)]
pub enum TxnError {
    /// Optimistic concurrency lost: a guard went stale and the
    /// intervening operations could not be *proved* to commute with
    /// the transaction's own (genuine conflicts and conservative
    /// verdicts alike — the same soundness discipline as the merge
    /// rung: never commit on a guess). Retryable: re-read, re-guard,
    /// resubmit.
    Conflict {
        /// The document whose guard failed.
        doc: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The request is malformed or contradicts document state (unknown
    /// document or revision, tombstoned target, empty program).
    /// Resubmitting the identical transaction cannot succeed.
    Rejected(StoreError),
}

impl TxnError {
    /// The wire `reason` code.
    pub fn code(&self) -> &'static str {
        match self {
            TxnError::Conflict { .. } => "txn-conflict",
            TxnError::Rejected(e) => e.code(),
        }
    }

    /// Whether resubmitting after a fresh read can succeed.
    pub fn retryable(&self) -> bool {
        matches!(self, TxnError::Conflict { .. })
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict { doc, detail } => {
                write!(f, "transaction conflict on {doc:?}: {detail}")
            }
            TxnError::Rejected(e) => write!(f, "transaction rejected: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// One revision row from [`Store::doc_revs`]: `(rev, parent, deleted,
/// content text)`.
pub type RevRow = (RevId, Option<RevId>, bool, Option<String>);

struct DocState {
    revs: RevTree,
    /// The document's latest sequence number (its changes-feed slot).
    seq: u64,
    /// Replay aliases for auto-merged puts. A merged put mints its
    /// revision from the *winner*, so the id a replay would derive from
    /// the client's `base_rev` is not in the tree; this map sends that
    /// base-derived id to the rev the merge actually minted. Fast-path
    /// and branch commits need no entry — their minted id *is* the
    /// base-derived one, which the tree lookup already catches.
    merge_aliases: HashMap<RevId, RevId>,
}

/// The durable half of a store: the open log plus compaction policy.
struct Durable {
    wal: Wal,
    dir: PathBuf,
    snapshot_every: u64,
}

/// A revision's content together with its structural index, shared with
/// every grounded check that reads it (see [`Store::indexed`]).
#[derive(Debug)]
pub struct IndexedDoc {
    /// The revision the snapshot was taken at.
    pub rev: RevId,
    /// The revision's content.
    pub tree: Tree,
    /// Its structural index.
    pub index: DocIndex,
}

struct Inner {
    docs: HashMap<String, DocState>,
    /// One indexed snapshot per document, valid only while `rev` is
    /// still the winner. Invalidated at the single commit point
    /// ([`Inner::commit`]), so every put — applied, merged, branched,
    /// or recovered replay — drops the stale entry.
    index_cache: HashMap<String, Arc<IndexedDoc>>,
    /// Global commit counter; strictly increases with every commit.
    seq: u64,
    /// Sequence → document, one entry per document (a new commit moves
    /// the document's entry; the feed is "current winners ordered by
    /// last change", exactly CouchDB's `_changes` shape).
    by_seq: BTreeMap<u64, String>,
    /// Total revisions across all documents (gauge bookkeeping).
    revisions: u64,
    /// `Some` for WAL-backed stores (see [`Store::open`]).
    durable: Option<Durable>,
}

/// A concurrent multi-version document store.
pub struct Store {
    cfg: StoreConfig,
    inner: Mutex<Inner>,
    /// What recovery found, for stores opened from a data directory.
    report: Option<RecoveryReport>,
}

impl Default for Store {
    fn default() -> Store {
        Store::new(StoreConfig::default())
    }
}

/// What the commit helper needs to mint one revision.
struct Commit {
    parent: Option<RevId>,
    deleted: bool,
    content: Option<Tree>,
    op: Option<Update>,
}

impl Inner {
    /// Mints one revision: logs the outcome (durable per policy),
    /// *then* mutates memory. On a WAL error nothing is applied — the
    /// disk can run ahead of memory across a crash (replay is
    /// idempotent), but memory must never run ahead of the disk, or a
    /// restart would silently lose an acked write.
    fn commit(
        &mut self,
        doc_id: &str,
        rev: RevId,
        c: Commit,
        result: PutResult,
        alias: Option<RevId>,
    ) -> Result<u64, StoreError> {
        let seq = self.seq + 1;
        let node = RevNode {
            parent: c.parent,
            deleted: c.deleted,
            content: c.content,
            op: c.op,
            seq,
        };
        if let Some(d) = &mut self.durable {
            let body = recovery::record_body(doc_id, &rev, &node, result.name(), alias.as_ref());
            d.wal.append(body.as_bytes()).map_err(from_wal)?;
        }
        self.seq = seq;
        self.index_cache.remove(doc_id);
        let doc = self.docs.get_mut(doc_id).expect("commit target exists");
        if doc.seq != 0 {
            self.by_seq.remove(&doc.seq);
        }
        let inserted = doc.revs.insert(rev, node);
        debug_assert!(inserted, "commit is only reached for fresh revisions");
        doc.seq = seq;
        if let Some(a) = alias {
            doc.merge_aliases.insert(a, rev);
        }
        self.by_seq.insert(seq, doc_id.to_owned());
        self.revisions += 1;
        self.maybe_compact();
        Ok(seq)
    }

    /// Compacts when the log has grown past the configured bound. A
    /// failed compaction is counted, not fatal: the put that triggered
    /// it already committed, and the log simply stays long.
    fn maybe_compact(&mut self) {
        let due = self
            .durable
            .as_ref()
            .is_some_and(|d| d.snapshot_every > 0 && d.wal.records() >= d.snapshot_every);
        if due && self.compact().is_err() {
            cxu_obs::counter!("store.wal.compact_errors").inc();
        }
    }

    /// Writes a snapshot of the live state, then resets the log.
    /// Ordered so a crash between the two steps leaves a snapshot plus
    /// a redundant log — and replaying that log is a no-op.
    fn compact(&mut self) -> Result<(), StoreError> {
        let Some(d) = &mut self.durable else {
            return Ok(());
        };
        let body = recovery::snapshot_body(
            self.seq,
            self.docs
                .iter()
                .map(|(id, s)| (id.as_str(), &s.revs, s.seq, &s.merge_aliases)),
        );
        snapshot::save(&d.dir, body.as_bytes()).map_err(from_wal)?;
        d.wal.reset().map_err(from_wal)?;
        cxu_obs::counter!("store.wal.compactions").inc();
        Ok(())
    }
}

/// The canonical payload text a revision id is derived from. Creates
/// and replacements hash the content's text form, operations hash their
/// wire encoding — deterministic renderings, so identical edits mint
/// identical revision ids on every replica.
fn payload_text(payload: &PutPayload) -> String {
    match payload {
        PutPayload::Content(t) => format!("content\0{}", text::to_text(t)),
        PutPayload::Op(u) => op_payload_text(u),
        PutPayload::Tombstone => "tombstone".to_owned(),
    }
}

/// The operation payload's canonical text (shared by single-op puts
/// and transaction writes, so the same edit at the same parent mints
/// the same revision id through either path).
fn op_payload_text(u: &Update) -> String {
    let stmt = Stmt::Update(u.clone());
    format!("update\0{}", wire::stmt_to_json(&stmt))
}

impl Store {
    /// An empty in-memory store (no durability).
    pub fn new(cfg: StoreConfig) -> Store {
        Store {
            cfg,
            inner: Mutex::new(Inner {
                docs: HashMap::new(),
                index_cache: HashMap::new(),
                seq: 0,
                by_seq: BTreeMap::new(),
                revisions: 0,
                durable: None,
            }),
            report: None,
        }
    }

    /// Opens (or creates) a WAL-backed store rooted at `dcfg.dir`:
    /// loads the snapshot if one exists, replays the log over it with
    /// torn-tail truncation, and rebuilds the changes feed. Fails
    /// loudly on mid-log or snapshot corruption.
    pub fn open(cfg: StoreConfig, dcfg: DurabilityConfig) -> Result<Store, StoreError> {
        std::fs::create_dir_all(&dcfg.dir)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", dcfg.dir.display())))?;
        cxu_obs::counter!("store.recovery.runs").inc();
        let snap = snapshot::load(&dcfg.dir).map_err(from_wal)?;
        let (wal, scan) = Wal::open(&dcfg.dir, dcfg.fsync).map_err(from_wal)?;
        let recovered = recovery::rebuild(snap.as_deref(), &scan).map_err(from_wal)?;
        if recovered.report.snapshot_loaded {
            cxu_obs::counter!("store.recovery.snapshot_loaded").inc();
        }
        cxu_obs::counter!("store.recovery.torn_bytes").add(recovered.report.torn_bytes);
        let mut docs = HashMap::new();
        let mut by_seq = BTreeMap::new();
        for (id, d) in recovered.docs {
            if d.seq != 0 {
                by_seq.insert(d.seq, id.clone());
            }
            docs.insert(
                id,
                DocState {
                    revs: d.revs,
                    seq: d.seq,
                    merge_aliases: d.aliases,
                },
            );
        }
        Ok(Store {
            cfg,
            inner: Mutex::new(Inner {
                docs,
                index_cache: HashMap::new(),
                seq: recovered.seq,
                by_seq,
                revisions: recovered.revisions,
                durable: Some(Durable {
                    wal,
                    dir: dcfg.dir,
                    snapshot_every: dcfg.snapshot_every,
                }),
            }),
            report: Some(recovered.report),
        })
    }

    /// What recovery found, for stores opened with [`Store::open`].
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.report.clone()
    }

    /// Whether this store writes a WAL.
    pub fn is_durable(&self) -> bool {
        self.lock().durable.is_some()
    }

    /// Forces buffered log records to stable storage (a no-op for
    /// in-memory stores and under `FsyncPolicy::Always`).
    pub fn flush(&self) -> Result<(), StoreError> {
        match &mut self.lock().durable {
            Some(d) => d.wal.sync().map_err(from_wal),
            None => Ok(()),
        }
    }

    /// Snapshots the live state and resets the log (what graceful
    /// shutdown calls so the next boot replays nothing).
    pub fn compact(&self) -> Result<(), StoreError> {
        self.lock().compact()
    }

    /// Records currently in the log (0 for in-memory stores).
    pub fn wal_records(&self) -> u64 {
        self.lock().durable.as_ref().map_or(0, |d| d.wal.records())
    }

    /// Every revision of `doc_id` as a [`RevRow`], sorted by id — a
    /// deterministic fingerprint of the document's whole tree, for
    /// state-equality checks in tests.
    pub fn doc_revs(&self, doc_id: &str) -> Option<Vec<RevRow>> {
        let inner = self.lock();
        let doc = inner.docs.get(doc_id)?;
        let mut out: Vec<_> = doc
            .revs
            .iter()
            .map(|(r, n)| {
                (
                    *r,
                    n.parent,
                    n.deleted,
                    n.content.as_ref().map(text::to_text),
                )
            })
            .collect();
        out.sort_by_key(|(r, ..)| *r);
        Some(out)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Puts `payload` against `base_rev`, climbing the module-level
    /// ladder. `check` is consulted only on the auto-merge rung, with
    /// the store unlocked.
    pub fn put(
        &self,
        doc_id: &str,
        base_rev: Option<RevId>,
        payload: PutPayload,
        check: &mut PairCheck<'_>,
    ) -> Result<PutOutcome, StoreError> {
        let t0 = Instant::now();
        let out = self.put_inner(doc_id, base_rev, payload, Some(check));
        Self::tally_put(&out);
        cxu_obs::histogram!("store.put_ns").record_since(t0);
        out
    }

    /// Tombstones the document at `base_rev`. A delete is a put of a
    /// tombstone: same ladder, except the merge rung is skipped
    /// (whole-document deletion commutes with nothing).
    pub fn delete(&self, doc_id: &str, base_rev: RevId) -> Result<PutOutcome, StoreError> {
        let t0 = Instant::now();
        let out = self.put_inner(doc_id, Some(base_rev), PutPayload::Tombstone, None);
        Self::tally_put(&out);
        cxu_obs::counter!("store.deletes").inc();
        cxu_obs::histogram!("store.put_ns").record_since(t0);
        out
    }

    fn tally_put(out: &Result<PutOutcome, StoreError>) {
        // `store.puts` and its partition bucket move together, at the
        // moment the answer exists — a put that dies earlier (panic,
        // injected fault in the serving layer) is the caller's
        // `store.put.failed`, keeping the partition identity exact.
        cxu_obs::counter!("store.puts").inc();
        match out {
            Ok(o) => match o.result {
                PutResult::Created | PutResult::Applied => {
                    cxu_obs::counter!("store.put.applied").inc()
                }
                PutResult::Noop => cxu_obs::counter!("store.put.noop").inc(),
                PutResult::Merged => cxu_obs::counter!("store.put.merged").inc(),
                PutResult::Branched => cxu_obs::counter!("store.put.branched").inc(),
            },
            Err(_) => cxu_obs::counter!("store.put.rejected").inc(),
        }
    }

    /// Applies a transaction atomically: every write commits — all
    /// revisions minted, logged as a **single** checksummed WAL frame,
    /// visible in one changes-feed step per document — or nothing
    /// changes at all.
    ///
    /// Admission is optimistic, the merge rung's criterion lifted to
    /// transactions: a guard whose revision is no longer the winner
    /// does not fail outright — the operations that landed in between
    /// are checked pairwise against the transaction's own ops on that
    /// document, and only when *every* pair is an exact, non-degraded
    /// no-conflict does the transaction replay on the current winner.
    /// Any genuine conflict, any conservative verdict, or a read-only
    /// guard whose winner moved at all, turns into a retryable
    /// [`TxnError::Conflict`]. Transactions never branch: a branch of
    /// half a program would not be a serializable unit.
    ///
    /// Same-document writes chain — the second op applies to the
    /// first's result — and detector calls run with the store
    /// unlocked, re-verifying winner stability before committing
    /// (bounded by `merge_retries`, like the put ladder).
    ///
    /// Retries are idempotent when **every written document carries a
    /// guard**: each write's client-view revision id (derived by
    /// chaining from the guard) is recorded as a replay alias, so
    /// resubmitting an already-committed transaction resolves to a
    /// no-op at the originally minted revisions. Unguarded writes
    /// anchor at whatever the winner happens to be, which a retry
    /// cannot reproduce — clients that retry must guard.
    pub fn apply_txn(
        &self,
        guards: &[TxnGuard],
        writes: &[TxnWrite],
        check: &mut PairCheck<'_>,
    ) -> Result<TxnOutcome, TxnError> {
        let t0 = Instant::now();
        let out = self.apply_txn_inner(guards, writes, check);
        // `txn.commits` partitions exactly like `store.puts`:
        // `txn.commits == txn.applied + txn.conflicted + txn.rejected
        // + txn.failed`, where `failed` belongs to the serving layer
        // (a transaction that dies before the store can answer).
        cxu_obs::counter!("txn.commits").inc();
        cxu_obs::counter!("txn.ops").add(writes.len() as u64);
        match &out {
            Ok(_) => cxu_obs::counter!("txn.applied").inc(),
            Err(TxnError::Conflict { .. }) => cxu_obs::counter!("txn.conflicted").inc(),
            Err(TxnError::Rejected(_)) => cxu_obs::counter!("txn.rejected").inc(),
        }
        cxu_obs::histogram!("store.txn_ns").record_since(t0);
        out
    }

    fn apply_txn_inner(
        &self,
        guards: &[TxnGuard],
        writes: &[TxnWrite],
        check: &mut PairCheck<'_>,
    ) -> Result<TxnOutcome, TxnError> {
        let reject = |e: StoreError| TxnError::Rejected(e);
        if writes.is_empty() {
            return Err(reject(StoreError::Conflict(
                "transaction has no writes".to_owned(),
            )));
        }
        if writes.len() > MAX_TXN_OPS {
            return Err(reject(StoreError::Conflict(format!(
                "transaction has {} writes; the limit is {MAX_TXN_OPS}",
                writes.len()
            ))));
        }
        let mut guard_of: HashMap<&str, RevId> = HashMap::new();
        for g in guards {
            if guard_of.insert(g.doc.as_str(), g.rev).is_some() {
                return Err(reject(StoreError::Conflict(format!(
                    "duplicate guard for document {:?}",
                    g.doc
                ))));
            }
        }
        // Written documents in first-touch order (small sets; a scan
        // beats hashing).
        let mut write_docs: Vec<&str> = Vec::new();
        for w in writes {
            if !write_docs.contains(&w.doc.as_str()) {
                write_docs.push(&w.doc);
            }
        }
        let all_guarded = write_docs.iter().all(|d| guard_of.contains_key(d));
        let payload_strs: Vec<String> = writes.iter().map(|w| op_payload_text(&w.op)).collect();

        struct DocPlan {
            winner: RevId,
            tree: Tree,
            /// Ops between a stale guard and the winner (empty when the
            /// guard is current or absent).
            chain: Vec<Update>,
        }

        let mut attempts = 0usize;
        let mut checked_total = 0usize;
        'retry: loop {
            // Phase 1 — validate and snapshot under the lock.
            let mut inner = self.lock();
            for g in guards {
                let doc = inner
                    .docs
                    .get(&g.doc)
                    .ok_or_else(|| reject(StoreError::NotFound(g.doc.clone())))?;
                if !doc.revs.contains(&g.rev) {
                    return Err(reject(StoreError::UnknownRev(format!(
                        "document {:?} has no revision {}",
                        g.doc, g.rev
                    ))));
                }
            }
            let mut plans: HashMap<&str, DocPlan> = HashMap::new();
            for &d in &write_docs {
                let doc = inner
                    .docs
                    .get(d)
                    .ok_or_else(|| reject(StoreError::NotFound(d.to_owned())))?;
                let winner = doc.revs.winner().expect("known documents are nonempty");
                let wnode = doc.revs.get(&winner).expect("winner exists");
                if wnode.deleted {
                    return Err(reject(StoreError::Conflict(format!(
                        "document {d:?} is deleted; transactions edit live documents"
                    ))));
                }
                let chain = match guard_of.get(d) {
                    Some(g) if *g != winner => match Self::plan_chain(&doc.revs, g, &winner) {
                        Some(ops) => ops,
                        None => {
                            return Err(TxnError::Conflict {
                                doc: d.to_owned(),
                                detail: format!("guard {g} cannot linearize to winner {winner}"),
                            })
                        }
                    },
                    _ => Vec::new(),
                };
                plans.insert(
                    d,
                    DocPlan {
                        winner,
                        tree: wnode.content.clone().expect("live winners carry content"),
                        chain,
                    },
                );
            }
            // Read-only guards demand an unmoved winner.
            for g in guards {
                if plans.contains_key(g.doc.as_str()) {
                    continue;
                }
                let doc = inner.docs.get(&g.doc).expect("validated above");
                let winner = doc.revs.winner().expect("known documents are nonempty");
                if winner != g.rev {
                    return Err(TxnError::Conflict {
                        doc: g.doc.clone(),
                        detail: format!("read guard at {} but the winner is {winner}", g.rev),
                    });
                }
            }

            // Client-view replay anchors: the id each write would mint
            // if committed directly at its guard, chained per document.
            // Deterministic in the client's inputs alone (for guarded
            // documents), so a retry derives the same anchors.
            let mut anchor_tip: HashMap<&str, RevId> = write_docs
                .iter()
                .map(|&d| (d, guard_of.get(d).copied().unwrap_or(plans[d].winner)))
                .collect();
            let mut anchors = Vec::with_capacity(writes.len());
            for (w, p) in writes.iter().zip(&payload_strs) {
                let tip = anchor_tip.get_mut(w.doc.as_str()).expect("planned above");
                let a = RevId::derive(Some(tip), p, false);
                *tip = a;
                anchors.push(a);
            }
            if all_guarded {
                let mut resolved = Vec::with_capacity(writes.len());
                for (w, a) in writes.iter().zip(&anchors) {
                    let doc = inner.docs.get(&w.doc).expect("planned above");
                    let prior = if doc.revs.contains(a) {
                        Some(*a)
                    } else {
                        doc.merge_aliases.get(a).copied()
                    };
                    match prior {
                        Some(r) => resolved.push((w.doc.clone(), r)),
                        None => {
                            resolved.clear();
                            break;
                        }
                    }
                }
                if resolved.len() == writes.len() {
                    // Every write already committed: an idempotent
                    // retry of the whole transaction.
                    return Ok(TxnOutcome {
                        revs: resolved,
                        seq: inner.seq,
                        checked_pairs: checked_total,
                        replayed: true,
                    });
                }
            }

            // Phase 2 — prove stale guards commute, detectors outside
            // the lock. Each intervening op must commute with *every*
            // transaction op on that document.
            let mut to_check: Vec<(&str, Op, Op)> = Vec::new();
            for &d in &write_docs {
                for iv in &plans[d].chain {
                    for w in writes.iter().filter(|w| w.doc == d) {
                        to_check.push((d, Op::Update(iv.clone()), Op::Update(w.op.clone())));
                    }
                }
            }
            if !to_check.is_empty() {
                let snap: Vec<(String, RevId)> = plans
                    .iter()
                    .map(|(d, p)| (d.to_string(), p.winner))
                    .chain(
                        guards
                            .iter()
                            .filter(|g| !plans.contains_key(g.doc.as_str()))
                            .map(|g| (g.doc.clone(), g.rev)),
                    )
                    .collect();
                drop(inner);
                let round_start = checked_total;
                let mut conflict: Option<(&str, bool)> = None;
                for (d, a, b) in &to_check {
                    let dec = check(a, b);
                    checked_total += 1;
                    if dec.verdict.conflict || dec.verdict.detector.is_conservative() {
                        conflict = Some((*d, dec.verdict.detector.is_conservative()));
                        break;
                    }
                }
                cxu_obs::counter!("txn.pair.checked").add((checked_total - round_start) as u64);
                if let Some((d, conservative)) = conflict {
                    cxu_obs::counter!("txn.pair.conflicts").inc();
                    return Err(TxnError::Conflict {
                        doc: d.to_owned(),
                        detail: if conservative {
                            "an intervening operation could not be proved to commute \
                             (degraded verdict)"
                                .to_owned()
                        } else {
                            "an intervening operation conflicts with the transaction".to_owned()
                        },
                    });
                }
                inner = self.lock();
                for (d, rev) in &snap {
                    let moved = match inner.docs.get(d) {
                        Some(doc) => doc.revs.winner() != Some(*rev),
                        None => true,
                    };
                    if moved {
                        if attempts < self.cfg.merge_retries {
                            attempts += 1;
                            cxu_obs::counter!("txn.retries").inc();
                            drop(inner);
                            continue 'retry;
                        }
                        return Err(TxnError::Conflict {
                            doc: d.clone(),
                            detail: "the winner kept moving during validation".to_owned(),
                        });
                    }
                }
            }

            // Phase 3 — stage and commit atomically, lock held, every
            // winner exactly as planned. Same-document writes chain.
            let mut minted: Vec<(String, RevId)> = Vec::with_capacity(writes.len());
            let mut records: Vec<cxu_gen::json::Json> = Vec::with_capacity(writes.len());
            let mut staged: Vec<(String, RevId, RevNode, Option<RevId>)> =
                Vec::with_capacity(writes.len());
            let mut tips: HashMap<&str, (RevId, Tree)> = plans
                .iter()
                .map(|(&d, p)| (d, (p.winner, p.tree.clone())))
                .collect();
            let base_seq = inner.seq;
            for (i, (w, pstr)) in writes.iter().zip(&payload_strs).enumerate() {
                let (parent, tree) = tips.get_mut(w.doc.as_str()).expect("planned above");
                let rev = RevId::derive(Some(&*parent), pstr, false);
                if inner
                    .docs
                    .get(&w.doc)
                    .is_some_and(|doc| doc.revs.contains(&rev))
                {
                    // An identical edit at the same parent raced in
                    // while unlocked. Reusing it would weld half this
                    // transaction to someone else's commit; hand the
                    // race back instead.
                    return Err(TxnError::Conflict {
                        doc: w.doc.clone(),
                        detail: format!("revision {rev} already exists; identical edit raced in"),
                    });
                }
                let (new_tree, _) = w.op.apply_to_copy(tree);
                let seq = base_seq + i as u64 + 1;
                let node = RevNode {
                    parent: Some(*parent),
                    deleted: false,
                    content: Some(new_tree.clone()),
                    op: Some(w.op.clone()),
                    seq,
                };
                let alias = (anchors[i] != rev).then_some(anchors[i]);
                records.push(recovery::record_json(
                    &w.doc,
                    &rev,
                    &node,
                    "applied",
                    alias.as_ref(),
                ));
                minted.push((w.doc.clone(), rev));
                staged.push((w.doc.clone(), rev, node, alias));
                *parent = rev;
                *tree = new_tree;
            }
            // One frame, one checksum: the WAL either holds the whole
            // transaction or none of it. Log first, mutate after — as
            // everywhere, memory must never run ahead of the disk.
            if let Some(d) = &mut inner.durable {
                let body = recovery::txn_body(records);
                d.wal
                    .append(body.as_bytes())
                    .map_err(|e| reject(from_wal(e)))?;
            }
            inner.seq = base_seq + writes.len() as u64;
            for &d in &write_docs {
                // Exactly one invalidation per document, however many
                // generations this transaction advanced it.
                inner.index_cache.remove(d);
            }
            let mut slots: Vec<(String, u64, u64)> = Vec::with_capacity(write_docs.len());
            for (doc_id, rev, node, alias) in staged {
                let node_seq = node.seq;
                let doc = inner.docs.get_mut(&doc_id).expect("planned above");
                let inserted = doc.revs.insert(rev, node);
                debug_assert!(inserted, "staging is only reached for fresh revisions");
                if let Some(a) = alias {
                    doc.merge_aliases.insert(a, rev);
                }
                match slots.iter_mut().find(|(d, ..)| *d == doc_id) {
                    Some(slot) => slot.2 = node_seq,
                    None => slots.push((doc_id, doc.seq, node_seq)),
                }
            }
            inner.revisions += writes.len() as u64;
            for (doc_id, old_seq, new_seq) in slots {
                if old_seq != 0 {
                    inner.by_seq.remove(&old_seq);
                }
                inner.docs.get_mut(&doc_id).expect("planned above").seq = new_seq;
                inner.by_seq.insert(new_seq, doc_id);
            }
            inner.maybe_compact();
            return Ok(TxnOutcome {
                revs: minted,
                seq: inner.seq,
                checked_pairs: checked_total,
                replayed: false,
            });
        }
    }

    fn put_inner(
        &self,
        doc_id: &str,
        base_rev: Option<RevId>,
        payload: PutPayload,
        mut check: Option<&mut PairCheck<'_>>,
    ) -> Result<PutOutcome, StoreError> {
        let payload_str = payload_text(&payload);
        let deleted = matches!(payload, PutPayload::Tombstone);

        let Some(base) = base_rev else {
            return self.create(doc_id, payload, &payload_str);
        };

        // Idempotence anchor: the id this put would mint if committed
        // directly at its base. Fast-path and branch commits mint
        // exactly this id; merged commits record it as an alias. Either
        // way, a replay of the same (base, payload) resolves here.
        let replay = RevId::derive(Some(&base), &payload_str, deleted);

        let mut attempts = 0usize;
        let mut checked_total = 0usize;
        loop {
            let mut inner = self.lock();
            let doc = inner
                .docs
                .get(doc_id)
                .ok_or_else(|| StoreError::NotFound(doc_id.to_owned()))?;
            if !doc.revs.contains(&base) {
                return Err(StoreError::UnknownRev(format!(
                    "document {doc_id:?} has no revision {base}"
                )));
            }
            let winner = doc.revs.winner().expect("known documents are nonempty");

            // Idempotence: the same edit against the same base is a
            // noop at the originally minted rev, whether it first
            // landed on the fast path, as a branch — or as a merge,
            // whose minted rev hangs off the then-winner and is reached
            // through the alias map. Re-running a merged put through
            // the detectors instead would re-apply it: the op commutes
            // with itself, so the merge rung cannot tell a replay from
            // a fresh edit.
            let prior = if doc.revs.contains(&replay) {
                Some(replay)
            } else {
                doc.merge_aliases.get(&replay).copied()
            };
            if let Some(prior) = prior {
                return Ok(PutOutcome {
                    rev: prior,
                    winner,
                    winner_deleted: doc.revs.get(&winner).expect("winner exists").deleted,
                    result: PutResult::Noop,
                    seq: doc.seq,
                    checked_pairs: checked_total,
                });
            }

            if base == winner {
                // Fast path: uncontended edit at the head.
                return self.apply_at(
                    &mut inner,
                    doc_id,
                    base,
                    &payload,
                    &payload_str,
                    PutResult::Applied,
                    checked_total,
                );
            }

            // Stale base. Try the merge rung when the payload is an
            // operation, the base is live, and every intervening
            // revision carries a replayable operation.
            let merge_plan = match (&payload, check.as_deref_mut()) {
                (PutPayload::Op(op), Some(_)) => Self::plan_merge(&doc.revs, &base, &winner, op),
                _ => None,
            };
            let Some((intervening, winner_tree)) = merge_plan else {
                return self.branch_at(&mut inner, doc_id, base, &payload, &payload_str, {
                    checked_total
                });
            };

            // Consult the detectors with the store unlocked: a budgeted
            // NP-side search must not block unrelated documents.
            drop(inner);
            let my_op = match &payload {
                PutPayload::Op(u) => Op::Update(u.clone()),
                _ => unreachable!("merge rung only plans for operation payloads"),
            };
            let check = check.as_deref_mut().expect("merge rung requires a checker");
            let round_start = checked_total;
            let mut provably_commutes = true;
            for iv in &intervening {
                let d = check(&Op::Update(iv.clone()), &my_op);
                checked_total += 1;
                if d.verdict.conflict || d.verdict.detector.is_conservative() {
                    provably_commutes = false;
                    break;
                }
            }
            // Only this round's pairs: `checked_total` carries over
            // across winner-moved retries, and re-adding it would
            // double-count the earlier rounds.
            cxu_obs::counter!("store.merge.checked_pairs")
                .add((checked_total - round_start) as u64);

            let mut inner = self.lock();
            let doc = inner
                .docs
                .get(doc_id)
                .ok_or_else(|| StoreError::NotFound(doc_id.to_owned()))?;
            if doc.revs.winner() != Some(winner) {
                // The head moved while we were checking: the proof no
                // longer covers the full chain. Retry a few times, then
                // settle for the (always sound) branch.
                if attempts < self.cfg.merge_retries {
                    attempts += 1;
                    cxu_obs::counter!("store.put.retries").inc();
                    drop(inner);
                    continue;
                }
                return self.branch_at(&mut inner, doc_id, base, &payload, &payload_str, {
                    checked_total
                });
            }
            if !provably_commutes {
                return self.branch_at(&mut inner, doc_id, base, &payload, &payload_str, {
                    checked_total
                });
            }

            // Every pair commutes exactly: replay on the winner.
            let op = match payload {
                PutPayload::Op(u) => u,
                _ => unreachable!(),
            };
            let (merged_tree, _) = op.apply_to_copy(&winner_tree);
            let rev = RevId::derive(Some(&winner), &payload_str, false);
            if inner
                .docs
                .get(doc_id)
                .is_some_and(|d| d.revs.contains(&rev))
            {
                // The same merge raced in from another client.
                let doc = inner.docs.get(doc_id).expect("checked above");
                let w = doc.revs.winner().expect("nonempty");
                return Ok(PutOutcome {
                    rev,
                    winner: w,
                    winner_deleted: doc.revs.get(&w).expect("winner exists").deleted,
                    result: PutResult::Noop,
                    seq: doc.seq,
                    checked_pairs: checked_total,
                });
            }
            let seq = inner.commit(
                doc_id,
                rev,
                Commit {
                    parent: Some(winner),
                    deleted: false,
                    content: Some(merged_tree),
                    op: Some(op),
                },
                PutResult::Merged,
                Some(replay),
            )?;
            let doc = inner.docs.get(doc_id).expect("just committed");
            let w = doc.revs.winner().expect("nonempty");
            return Ok(PutOutcome {
                rev,
                winner: w,
                winner_deleted: doc.revs.get(&w).expect("winner exists").deleted,
                result: PutResult::Merged,
                seq,
                checked_pairs: checked_total,
            });
        }
    }

    /// Collects the merge rung's inputs: the operations on the chain
    /// from `base` to `winner` plus the winner's content. `None` when
    /// the chain is unusable — base deleted, winner deleted, base not
    /// an ancestor of the winner (sibling branches cannot linearize),
    /// or an intervening revision without a replayable op.
    fn plan_merge(
        revs: &RevTree,
        base: &RevId,
        winner: &RevId,
        _op: &Update,
    ) -> Option<(Vec<Update>, Tree)> {
        let winner_node = revs.get(winner)?;
        if winner_node.deleted {
            return None;
        }
        let intervening = Self::plan_chain(revs, base, winner)?;
        Some((intervening, winner_node.content.clone()?))
    }

    /// The operations on the chain from `base` (exclusive) to `winner`
    /// (inclusive), oldest first — what a stale base must commute with.
    /// `None` when the chain cannot linearize: base deleted, base not
    /// an ancestor of the winner (sibling branches), or an intervening
    /// revision without a replayable op.
    fn plan_chain(revs: &RevTree, base: &RevId, winner: &RevId) -> Option<Vec<Update>> {
        let base_node = revs.get(base)?;
        if base_node.deleted {
            return None;
        }
        let chain = revs.chain(base, winner)?;
        let mut ops = Vec::with_capacity(chain.len());
        for r in &chain {
            ops.push(revs.get(r)?.op.clone()?);
        }
        Some(ops)
    }

    fn create(
        &self,
        doc_id: &str,
        payload: PutPayload,
        payload_str: &str,
    ) -> Result<PutOutcome, StoreError> {
        let PutPayload::Content(content) = payload else {
            return Err(StoreError::Conflict(
                "a put without base_rev must carry full content".to_owned(),
            ));
        };
        let mut inner = self.lock();
        let parent = match inner.docs.get(doc_id) {
            Some(doc) => {
                let winner = doc.revs.winner().expect("known documents are nonempty");
                let node = doc.revs.get(&winner).expect("winner exists");
                if !node.deleted {
                    return Err(StoreError::Conflict(format!(
                        "document {doc_id:?} exists at {winner}; supply base_rev"
                    )));
                }
                // Resurrection: the new first revision extends the
                // tombstone so history stays one tree.
                Some(winner)
            }
            None => {
                if inner.docs.len() >= self.cfg.max_docs {
                    return Err(StoreError::TooManyDocs);
                }
                inner.docs.insert(
                    doc_id.to_owned(),
                    DocState {
                        revs: RevTree::new(),
                        seq: 0,
                        merge_aliases: HashMap::new(),
                    },
                );
                None
            }
        };
        let rev = RevId::derive(parent.as_ref(), payload_str, false);
        if inner
            .docs
            .get(doc_id)
            .is_some_and(|d| d.revs.contains(&rev))
        {
            let doc = inner.docs.get(doc_id).expect("checked above");
            let w = doc.revs.winner().expect("nonempty");
            return Ok(PutOutcome {
                rev,
                winner: w,
                winner_deleted: doc.revs.get(&w).expect("winner exists").deleted,
                result: PutResult::Noop,
                seq: doc.seq,
                checked_pairs: 0,
            });
        }
        let fresh = parent.is_none();
        let seq = match inner.commit(
            doc_id,
            rev,
            Commit {
                parent,
                deleted: false,
                content: Some(content),
                op: None,
            },
            PutResult::Created,
            None,
        ) {
            Ok(seq) => seq,
            Err(e) => {
                // A failed create must not leave an empty document
                // behind: every other path assumes known documents
                // have a winner.
                if fresh {
                    inner.docs.remove(doc_id);
                }
                return Err(e);
            }
        };
        let doc = inner.docs.get(doc_id).expect("just committed");
        let w = doc.revs.winner().expect("nonempty");
        Ok(PutOutcome {
            rev,
            winner: w,
            winner_deleted: false,
            result: PutResult::Created,
            seq,
            checked_pairs: 0,
        })
    }

    /// Commits `payload` as a child of `at` (the fast path when `at` is
    /// the winner). The caller has verified `at` exists.
    #[allow(clippy::too_many_arguments)]
    fn apply_at(
        &self,
        inner: &mut Inner,
        doc_id: &str,
        at: RevId,
        payload: &PutPayload,
        payload_str: &str,
        result: PutResult,
        checked_pairs: usize,
    ) -> Result<PutOutcome, StoreError> {
        let doc = inner.docs.get(doc_id).expect("caller verified");
        let at_node = doc.revs.get(&at).expect("caller verified").clone();
        let (content, op, deleted) = match payload {
            PutPayload::Content(t) => (Some(t.clone()), None, false),
            PutPayload::Op(u) => {
                let Some(base_tree) = at_node.content.as_ref() else {
                    return Err(StoreError::Conflict(format!(
                        "revision {at} of {doc_id:?} is deleted; operations need a live base"
                    )));
                };
                let (t, _) = u.apply_to_copy(base_tree);
                (Some(t), Some(u.clone()), false)
            }
            PutPayload::Tombstone => {
                if at_node.deleted {
                    return Err(StoreError::Conflict(format!(
                        "revision {at} of {doc_id:?} is already deleted"
                    )));
                }
                (None, None, true)
            }
        };
        let rev = RevId::derive(Some(&at), payload_str, deleted);
        if doc.revs.contains(&rev) {
            // An identical put committed while the merge rung had the
            // store unlocked (the fast path holds the lock from its
            // replay check to its commit, so only the post-detector
            // branch fallbacks can race here). Same (base, payload) ⇒
            // same rev: a replay, not a new commit.
            let w = doc.revs.winner().expect("nonempty");
            return Ok(PutOutcome {
                rev,
                winner: w,
                winner_deleted: doc.revs.get(&w).expect("winner exists").deleted,
                result: PutResult::Noop,
                seq: doc.seq,
                checked_pairs,
            });
        }
        let seq = inner.commit(
            doc_id,
            rev,
            Commit {
                parent: Some(at),
                deleted,
                content,
                op,
            },
            result,
            None,
        )?;
        let doc = inner.docs.get(doc_id).expect("just committed");
        let w = doc.revs.winner().expect("nonempty");
        Ok(PutOutcome {
            rev,
            winner: w,
            winner_deleted: doc.revs.get(&w).expect("winner exists").deleted,
            result,
            seq,
            checked_pairs,
        })
    }

    /// The branch rung: same commit as [`Store::apply_at`] but at a
    /// stale base, reported as [`PutResult::Branched`].
    fn branch_at(
        &self,
        inner: &mut Inner,
        doc_id: &str,
        base: RevId,
        payload: &PutPayload,
        payload_str: &str,
        checked_pairs: usize,
    ) -> Result<PutOutcome, StoreError> {
        self.apply_at(
            inner,
            doc_id,
            base,
            payload,
            payload_str,
            PutResult::Branched,
            checked_pairs,
        )
    }

    /// Reads a document: the winner, or a named revision.
    pub fn get(
        &self,
        doc_id: &str,
        rev: Option<RevId>,
        with_conflicts: bool,
    ) -> Result<GetResult, StoreError> {
        let t0 = Instant::now();
        cxu_obs::counter!("store.gets").inc();
        let inner = self.lock();
        let doc = inner
            .docs
            .get(doc_id)
            .ok_or_else(|| StoreError::NotFound(doc_id.to_owned()))?;
        let target = match rev {
            Some(r) => {
                if !doc.revs.contains(&r) {
                    return Err(StoreError::UnknownRev(format!(
                        "document {doc_id:?} has no revision {r}"
                    )));
                }
                r
            }
            None => doc.revs.winner().expect("known documents are nonempty"),
        };
        let node = doc.revs.get(&target).expect("checked above");
        let out = GetResult {
            rev: target,
            deleted: node.deleted,
            content: node.content.clone(),
            conflicts: if with_conflicts {
                doc.revs.conflicts()
            } else {
                Vec::new()
            },
            seq: doc.seq,
        };
        drop(inner);
        cxu_obs::histogram!("store.get_ns").record_since(t0);
        Ok(out)
    }

    /// The content of `doc_id` at `rev` (the winner when `None`) together
    /// with its structural index, for document-grounded conflict checks.
    ///
    /// The winner's index is cached per document and shared via `Arc`;
    /// any commit to the document invalidates the entry, so a hit is
    /// always the *current* winner at the moment of the lookup. Indexing
    /// runs **outside** the store lock — a multi-MB build never stalls
    /// puts — and the built entry is only cached after re-checking that
    /// the winner did not move meanwhile. Tombstones are an error:
    /// grounded checks need a live document.
    pub fn indexed(&self, doc_id: &str, rev: Option<RevId>) -> Result<Arc<IndexedDoc>, StoreError> {
        let t0 = Instant::now();
        let (target, content, is_winner) = {
            let inner = self.lock();
            let doc = inner
                .docs
                .get(doc_id)
                .ok_or_else(|| StoreError::NotFound(doc_id.to_owned()))?;
            let winner = doc.revs.winner().expect("known documents are nonempty");
            let target = match rev {
                Some(r) => {
                    if !doc.revs.contains(&r) {
                        return Err(StoreError::UnknownRev(format!(
                            "document {doc_id:?} has no revision {r}"
                        )));
                    }
                    r
                }
                None => winner,
            };
            if target == winner {
                if let Some(cached) = inner.index_cache.get(doc_id) {
                    if cached.rev == target {
                        cxu_obs::counter!("index.cache.hits").inc();
                        return Ok(Arc::clone(cached));
                    }
                }
            }
            let node = doc.revs.get(&target).expect("checked above");
            let Some(content) = node.content.clone() else {
                return Err(StoreError::Conflict(format!(
                    "document {doc_id:?} revision {target} is a tombstone; \
                     grounded checks need a live document"
                )));
            };
            (target, content, target == winner)
        };
        cxu_obs::counter!("index.cache.misses").inc();
        let built = Arc::new(IndexedDoc {
            rev: target,
            index: DocIndex::from_tree(&content),
            tree: content,
        });
        if is_winner {
            let mut inner = self.lock();
            if let Some(doc) = inner.docs.get(doc_id) {
                if doc.revs.winner() == Some(target) {
                    inner
                        .index_cache
                        .insert(doc_id.to_owned(), Arc::clone(&built));
                }
            }
        }
        cxu_obs::histogram!("store.index_ns").record_since(t0);
        Ok(built)
    }

    /// The changes feed: every document whose latest commit is after
    /// `since`, ordered by sequence. Returns the entries and the cursor
    /// to resume from — the last entry's sequence when `limit`
    /// truncated the page, the store's current sequence otherwise
    /// (so an idle tail poll makes progress past deleted history).
    pub fn changes(&self, since: u64, limit: Option<usize>) -> (Vec<ChangeEntry>, u64) {
        let t0 = Instant::now();
        cxu_obs::counter!("store.changes").inc();
        let inner = self.lock();
        let mut out = Vec::new();
        let mut truncated = false;
        for (&seq, doc_id) in inner.by_seq.range(since.saturating_add(1)..) {
            if limit.is_some_and(|l| out.len() >= l) {
                truncated = true;
                break;
            }
            let doc = inner.docs.get(doc_id).expect("by_seq entries are live");
            let rev = doc.revs.winner().expect("known documents are nonempty");
            out.push(ChangeEntry {
                seq,
                doc: doc_id.clone(),
                rev,
                deleted: doc.revs.get(&rev).expect("winner exists").deleted,
            });
        }
        let last_seq = if truncated {
            out.last().map(|e| e.seq).unwrap_or(since)
        } else {
            inner.seq.max(since)
        };
        drop(inner);
        cxu_obs::histogram!("store.changes_ns").record_since(t0);
        (out, last_seq)
    }

    /// Number of documents (live or tombstoned).
    pub fn docs_len(&self) -> usize {
        self.lock().docs.len()
    }

    /// Total revisions across all documents.
    pub fn revisions_len(&self) -> u64 {
        self.lock().revisions
    }

    /// The store's current (largest) sequence number.
    pub fn current_seq(&self) -> u64 {
        self.lock().seq
    }

    /// Sets the `store.docs` / `store.revisions` gauges to current
    /// levels. Gauges are states, not rates — callers rendering a
    /// metrics snapshot refresh them at snapshot time.
    pub fn set_gauges(&self) {
        let inner = self.lock();
        let docs = inner.docs.len() as i64;
        let revisions = inner.revisions.min(i64::MAX as u64) as i64;
        drop(inner);
        cxu_obs::gauge!("store.docs").set(docs);
        cxu_obs::gauge!("store.revisions").set(revisions);
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort final sync: a clean drop should not owe the disk
        // anything under `Interval`/`Never`.
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        if let Some(d) = &mut inner.durable {
            let _ = d.wal.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::{Delete, Insert};
    use cxu_pattern::xpath;
    use cxu_sched::{Deadline, SchedConfig, Scheduler};
    use cxu_tree::iso;

    fn content(s: &str) -> PutPayload {
        PutPayload::Content(text::parse(s).unwrap())
    }

    fn insert_op(pattern: &str, subtree: &str) -> Update {
        Update::Insert(Insert::new(
            xpath::parse(pattern).unwrap(),
            text::parse(subtree).unwrap(),
        ))
    }

    fn delete_op(pattern: &str) -> Update {
        Update::Delete(Delete::new(xpath::parse(pattern).unwrap()).unwrap())
    }

    /// A checker backed by a real scheduler (exact verdicts for the
    /// small linear patterns used here).
    fn with_sched(f: impl FnOnce(&mut PairCheck<'_>)) {
        let mut sched = Scheduler::new(SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        });
        let deadline = Deadline::never();
        let mut check = move |a: &Op, b: &Op| sched.check_pair(a, b, &deadline);
        f(&mut check);
    }

    #[test]
    fn create_fast_path_and_idempotent_replay() {
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b c)"), check).unwrap();
            assert_eq!(c.result, PutResult::Created);
            assert_eq!(c.rev.generation, 1);
            assert_eq!(c.seq, 1);

            let up = store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();
            assert_eq!(up.result, PutResult::Applied);
            assert_eq!(up.rev.generation, 2);
            assert_eq!(up.winner, up.rev);

            // Replaying the identical put is a no-op at the same rev.
            let again = store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();
            assert_eq!(again.result, PutResult::Noop);
            assert_eq!(again.rev, up.rev);
            assert_eq!(store.current_seq(), 2, "no-ops do not advance the feed");

            let g = store.get("d", None, true).unwrap();
            assert!(iso::isomorphic(
                g.content.as_ref().unwrap(),
                &text::parse("a(b(x) c)").unwrap()
            ));
            assert!(g.conflicts.is_empty());
        });
    }

    #[test]
    fn commuting_stale_put_merges_to_a_single_head() {
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b c)"), check).unwrap();
            // Editor 1 lands first.
            let u1 = store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();
            // Editor 2 also edits from the create: stale, but inserting
            // under `a/c` commutes with inserting under `a/b`.
            let u2 = store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/c", "y")),
                    check,
                )
                .unwrap();
            assert_eq!(u2.result, PutResult::Merged);
            assert_eq!(u2.rev.generation, 3, "merged on top of the winner");
            assert!(u2.checked_pairs >= 1);
            assert_eq!(u2.winner, u2.rev);
            assert!(u1.rev != u2.rev);

            let g = store.get("d", None, true).unwrap();
            assert!(g.conflicts.is_empty(), "single head, no siblings");
            assert!(iso::isomorphic(
                g.content.as_ref().unwrap(),
                &text::parse("a(b(x) c(y))").unwrap()
            ));
        });
    }

    #[test]
    fn replaying_a_merged_put_is_a_noop_at_the_merged_rev() {
        // Regression: the retry-after-dropped-response case. A merged
        // put mints its rev from the winner, not the client's base; a
        // replay must still be detected (via the alias map) instead of
        // re-running the merge rung — the op commutes with itself, so
        // the detectors would happily apply it a second time.
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b c)"), check).unwrap();
            store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();
            let merged = store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/c", "y")),
                    check,
                )
                .unwrap();
            assert_eq!(merged.result, PutResult::Merged);

            let seq_before = store.current_seq();
            let retry = store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/c", "y")),
                    check,
                )
                .unwrap();
            assert_eq!(retry.result, PutResult::Noop);
            assert_eq!(retry.rev, merged.rev, "the originally minted rev");
            assert_eq!(retry.winner, merged.winner);
            assert_eq!(store.current_seq(), seq_before, "nothing committed");

            let g = store.get("d", None, true).unwrap();
            assert!(g.conflicts.is_empty());
            assert!(
                iso::isomorphic(
                    g.content.as_ref().unwrap(),
                    &text::parse("a(b(x) c(y))").unwrap()
                ),
                "the edit applied exactly once"
            );
        });
    }

    #[test]
    fn conflicting_stale_put_branches_and_winner_is_deterministic() {
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b(q) c)"), check).unwrap();
            let u1 = store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();
            // Deleting `a/b` genuinely conflicts with inserting under it.
            let u2 = store
                .put("d", Some(c.rev), PutPayload::Op(delete_op("a/b")), check)
                .unwrap();
            assert_eq!(u2.result, PutResult::Branched);
            assert_eq!(u2.rev.generation, 2, "sibling of the first edit");

            let g = store.get("d", None, true).unwrap();
            assert_eq!(g.conflicts.len(), 1, "both sides preserved");
            // Same generation: the greater hash wins, regardless of
            // which arrived first.
            let expect = if u1.rev.hash > u2.rev.hash {
                u1.rev
            } else {
                u2.rev
            };
            assert_eq!(g.rev, expect);
        });
    }

    #[test]
    fn tombstones_reject_edits_and_allow_resurrection() {
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b)"), check).unwrap();
            let del = store.delete("d", c.rev).unwrap();
            assert_eq!(del.result, PutResult::Applied);
            assert!(del.winner_deleted);

            // Operations against the tombstone are rejected.
            let err = store
                .put(
                    "d",
                    Some(del.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap_err();
            assert_eq!(err.code(), "conflict");
            // Double delete is rejected too.
            assert_eq!(store.delete("d", del.rev).unwrap_err().code(), "conflict");

            // A create resurrects on top of the tombstone.
            let re = store.put("d", None, content("a(z)"), check).unwrap();
            assert_eq!(re.result, PutResult::Created);
            assert_eq!(re.rev.generation, 3);
            assert!(!store.get("d", None, false).unwrap().deleted);
        });
    }

    #[test]
    fn rejections_name_their_reason() {
        let store = Store::new(StoreConfig {
            max_docs: 1,
            ..StoreConfig::default()
        });
        with_sched(|check| {
            let c = store.put("d", None, content("a(b)"), check).unwrap();
            let e = store.put("d", None, content("a(c)"), check).unwrap_err();
            assert_eq!(e.code(), "conflict");
            let e = store
                .put(
                    "missing",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap_err();
            assert_eq!(e.code(), "not-found");
            let bogus = RevId {
                generation: 9,
                hash: 0xdead,
            };
            let e = store
                .put(
                    "d",
                    Some(bogus),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap_err();
            assert_eq!(e.code(), "unknown-rev");
            let e = store.put("e", None, content("a(b)"), check).unwrap_err();
            assert_eq!(e.code(), "too-many-docs");
            let e = store
                .put("d", None, PutPayload::Op(insert_op("a/b", "x")), check)
                .unwrap_err();
            assert_eq!(e.code(), "conflict");
        });
    }

    #[test]
    fn changes_feed_tracks_current_winners() {
        let store = Store::default();
        with_sched(|check| {
            let c1 = store.put("one", None, content("a(b)"), check).unwrap();
            let _c2 = store.put("two", None, content("a(c)"), check).unwrap();
            let u1 = store
                .put(
                    "one",
                    Some(c1.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();

            let (entries, last) = store.changes(0, None);
            assert_eq!(entries.len(), 2, "one row per document");
            assert_eq!(last, 3);
            assert_eq!(entries[0].doc, "two", "untouched doc keeps its older slot");
            assert_eq!(entries[1].doc, "one");
            assert_eq!(entries[1].rev, u1.rev);
            assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));

            // Cursor resume: nothing before or at `last`.
            let (tail, last2) = store.changes(last, None);
            assert!(tail.is_empty());
            assert_eq!(last2, last);

            // Limit truncates and hands back a resumable cursor.
            let (page, cursor) = store.changes(0, Some(1));
            assert_eq!(page.len(), 1);
            assert_eq!(cursor, page[0].seq);
            let (rest, _) = store.changes(cursor, None);
            assert_eq!(rest.len(), 1);
            assert_eq!(rest[0].doc, "one");
        });
    }

    #[test]
    fn durable_store_recovers_its_exact_state() {
        let dir = std::env::temp_dir().join(format!("cxu-store-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DurabilityConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            snapshot_every: 3, // force a compaction mid-history
        };
        let store = Store::open(StoreConfig::default(), dcfg.clone()).unwrap();
        let (revs, winner, changes, seq) = {
            with_sched(|check| {
                let c = store.put("d", None, content("a(b c)"), check).unwrap();
                store
                    .put(
                        "d",
                        Some(c.rev),
                        PutPayload::Op(insert_op("a/b", "x")),
                        check,
                    )
                    .unwrap();
                // Stale base that commutes: exercises the merged/alias
                // record shape.
                let m = store
                    .put(
                        "d",
                        Some(c.rev),
                        PutPayload::Op(insert_op("a/c", "y")),
                        check,
                    )
                    .unwrap();
                assert_eq!(m.result, PutResult::Merged);
                let e = store.put("gone", None, content("a(z)"), check).unwrap();
                store.delete("gone", e.rev).unwrap();
            });
            (
                store.doc_revs("d").unwrap(),
                store.get("d", None, true).unwrap().rev,
                store.changes(0, None),
                store.current_seq(),
            )
        };
        assert!(store.wal_records() < 5, "compaction ran");
        drop(store);

        let again = Store::open(StoreConfig::default(), dcfg).unwrap();
        let report = again.recovery_report().unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.seq, seq);
        assert_eq!(again.doc_revs("d").unwrap(), revs);
        assert_eq!(again.get("d", None, true).unwrap().rev, winner);
        assert_eq!(again.changes(0, None), changes);
        assert_eq!(again.current_seq(), seq);
        assert!(again.get("gone", None, false).unwrap().deleted);

        // The recovered alias map still answers a merged-put replay
        // with a noop at the originally minted rev.
        with_sched(|check| {
            let c_rev = again.doc_revs("d").unwrap()[0].0;
            let retry = again
                .put(
                    "d",
                    Some(c_rev),
                    PutPayload::Op(insert_op("a/c", "y")),
                    check,
                )
                .unwrap();
            assert_eq!(retry.result, PutResult::Noop);
        });
        drop(again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gauges_report_levels() {
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("g1", None, content("a(b)"), check).unwrap();
            store
                .put(
                    "g1",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();
            store.put("g2", None, content("a(c)"), check).unwrap();
        });
        assert_eq!(store.docs_len(), 2);
        assert_eq!(store.revisions_len(), 3);
        store.set_gauges();
        let snap = cxu_obs::registry().snapshot();
        // Other tests in this binary may run concurrently and move the
        // gauges afterwards, but levels are at least as recent as ours;
        // assert through the store's own accessors plus a fresh set.
        store.set_gauges();
        let snap2 = cxu_obs::registry().snapshot();
        assert!(snap.gauge("store.docs") >= 2 || snap2.gauge("store.docs") >= 2);
    }

    #[test]
    fn indexed_caches_winner_and_invalidates_on_put() {
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b c)"), check).unwrap();

            // First read builds; second read must share the same snapshot.
            let i1 = store.indexed("d", None).unwrap();
            assert_eq!(i1.rev, c.rev);
            assert_eq!(i1.index.len(), 3);
            let i2 = store.indexed("d", None).unwrap();
            assert!(Arc::ptr_eq(&i1, &i2), "second read must hit the cache");

            // A put moves the winner and must invalidate the entry.
            let up = store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();
            let i3 = store.indexed("d", None).unwrap();
            assert_eq!(i3.rev, up.rev);
            assert!(!Arc::ptr_eq(&i1, &i3));
            assert_eq!(i3.index.len(), 4);
            assert!(iso::isomorphic(
                &i3.tree,
                &text::parse("a(b(x) c)").unwrap()
            ));

            // Pinned old revisions build ad hoc and never poison the
            // winner cache.
            let old = store.indexed("d", Some(c.rev)).unwrap();
            assert_eq!(old.rev, c.rev);
            assert_eq!(old.index.len(), 3);
            let i4 = store.indexed("d", None).unwrap();
            assert_eq!(i4.rev, up.rev);
        });
    }

    fn guard(doc: &str, rev: RevId) -> TxnGuard {
        TxnGuard {
            doc: doc.to_owned(),
            rev,
        }
    }

    fn write(doc: &str, op: Update) -> TxnWrite {
        TxnWrite {
            doc: doc.to_owned(),
            op,
        }
    }

    #[test]
    fn txn_commits_all_writes_atomically_across_documents() {
        let store = Store::default();
        with_sched(|check| {
            let c1 = store.put("d1", None, content("a(b c)"), check).unwrap();
            let c2 = store.put("d2", None, content("x(y z)"), check).unwrap();
            let seq0 = store.current_seq();

            let out = store
                .apply_txn(
                    &[guard("d1", c1.rev), guard("d2", c2.rev)],
                    &[
                        write("d1", insert_op("a/b", "p")),
                        write("d2", insert_op("x/y", "q")),
                        write("d1", insert_op("a/c", "r")),
                    ],
                    check,
                )
                .unwrap();
            assert!(!out.replayed);
            assert_eq!(out.revs.len(), 3);
            assert_eq!(out.seq, seq0 + 3);
            assert_eq!(out.checked_pairs, 0, "fresh guards need no detectors");

            // Same-document writes chained: d1 advanced two generations.
            let g1 = store.get("d1", None, true).unwrap();
            assert_eq!(g1.rev.generation, 3);
            assert!(g1.conflicts.is_empty());
            assert!(iso::isomorphic(
                g1.content.as_ref().unwrap(),
                &text::parse("a(b(p) c(r))").unwrap()
            ));
            let g2 = store.get("d2", None, true).unwrap();
            assert!(iso::isomorphic(
                g2.content.as_ref().unwrap(),
                &text::parse("x(y(q) z)").unwrap()
            ));

            // One changes-feed row per document, at the final seqs.
            let (entries, _) = store.changes(seq0, None);
            assert_eq!(entries.len(), 2);
            assert_eq!(entries[0].doc, "d2");
            assert_eq!(entries[0].seq, seq0 + 2);
            assert_eq!(entries[1].doc, "d1");
            assert_eq!(entries[1].seq, seq0 + 3);
        });
    }

    #[test]
    fn txn_with_stale_guard_commits_when_chain_commutes_and_conflicts_otherwise() {
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b c e)"), check).unwrap();
            // Another editor lands first.
            store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();

            // Commuting transaction: edits under a/c and a/e only.
            let out = store
                .apply_txn(
                    &[guard("d", c.rev)],
                    &[
                        write("d", insert_op("a/c", "y")),
                        write("d", insert_op("a/e", "z")),
                    ],
                    check,
                )
                .unwrap();
            assert!(out.checked_pairs >= 2, "chain op × both txn ops");
            let g = store.get("d", None, true).unwrap();
            assert!(g.conflicts.is_empty(), "no branching, single head");
            assert!(iso::isomorphic(
                g.content.as_ref().unwrap(),
                &text::parse("a(b(x) c(y) e(z))").unwrap()
            ));

            // Conflicting transaction: deleting a/b collides with the
            // intervening insert under a/b. Nothing may land — not even
            // the commuting first write.
            let before = store.doc_revs("d").unwrap();
            let err = store
                .apply_txn(
                    &[guard("d", c.rev)],
                    &[
                        write("d", insert_op("a/e", "w")),
                        write("d", delete_op("a/b")),
                    ],
                    check,
                )
                .unwrap_err();
            assert!(matches!(err, TxnError::Conflict { .. }));
            assert!(err.retryable());
            assert_eq!(err.code(), "txn-conflict");
            assert_eq!(store.doc_revs("d").unwrap(), before, "all-or-nothing");
        });
    }

    #[test]
    fn txn_read_only_guard_demands_unmoved_winner() {
        let store = Store::default();
        with_sched(|check| {
            let c1 = store.put("d1", None, content("a(b)"), check).unwrap();
            let c2 = store.put("d2", None, content("x(y)"), check).unwrap();

            // Guarding d2 read-only while it is unmoved: fine.
            store
                .apply_txn(
                    &[guard("d1", c1.rev), guard("d2", c2.rev)],
                    &[write("d1", insert_op("a/b", "p"))],
                    check,
                )
                .unwrap();

            // d2 moves; the same read guard now fails, even though the
            // write on d1 would commute.
            let u2 = store
                .put(
                    "d2",
                    Some(c2.rev),
                    PutPayload::Op(insert_op("x/y", "q")),
                    check,
                )
                .unwrap();
            let err = store
                .apply_txn(
                    &[guard("d1", c1.rev), guard("d2", c2.rev)],
                    &[write("d1", insert_op("a/b", "s"))],
                    check,
                )
                .unwrap_err();
            assert!(matches!(err, TxnError::Conflict { ref doc, .. } if doc == "d2"));

            // Re-guarding at the current winner succeeds.
            store
                .apply_txn(
                    &[guard("d1", c1.rev), guard("d2", u2.rev)],
                    &[write("d1", insert_op("a/b", "s"))],
                    check,
                )
                .unwrap();
        });
    }

    #[test]
    fn txn_retry_is_a_noop_at_the_original_revisions() {
        let store = Store::default();
        with_sched(|check| {
            let c1 = store.put("d1", None, content("a(b c)"), check).unwrap();
            let c2 = store.put("d2", None, content("x(y)"), check).unwrap();
            let guards = [guard("d1", c1.rev), guard("d2", c2.rev)];
            let writes = [
                write("d1", insert_op("a/b", "p")),
                write("d1", insert_op("a/c", "q")),
                write("d2", insert_op("x/y", "r")),
            ];
            let first = store.apply_txn(&guards, &writes, check).unwrap();
            let seq = store.current_seq();

            // The ack was lost; the client resubmits verbatim.
            let retry = store.apply_txn(&guards, &writes, check).unwrap();
            assert!(retry.replayed);
            assert_eq!(retry.revs, first.revs, "originally minted revisions");
            assert_eq!(store.current_seq(), seq, "nothing committed");
            let g = store.get("d1", None, false).unwrap();
            assert!(
                iso::isomorphic(
                    g.content.as_ref().unwrap(),
                    &text::parse("a(b(p) c(q))").unwrap()
                ),
                "edits applied exactly once"
            );
        });
    }

    #[test]
    fn txn_retry_replays_even_after_the_winner_moves_on() {
        // The anchors live in the tree/alias map forever, so a replay
        // is detected even when later commits buried the transaction.
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b c)"), check).unwrap();
            let guards = [guard("d", c.rev)];
            let writes = [write("d", insert_op("a/b", "p"))];
            let first = store.apply_txn(&guards, &writes, check).unwrap();
            store
                .put(
                    "d",
                    Some(first.revs[0].1),
                    PutPayload::Op(insert_op("a/c", "z")),
                    check,
                )
                .unwrap();
            let retry = store.apply_txn(&guards, &writes, check).unwrap();
            assert!(retry.replayed);
            assert_eq!(retry.revs, first.revs);
        });
    }

    #[test]
    fn txn_stale_guard_retry_lands_on_the_alias_map() {
        // A transaction committed through a stale-but-commuting guard
        // mints revs from the winner, not the guard; the retry resolves
        // through the per-write aliases.
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b c e)"), check).unwrap();
            store
                .put(
                    "d",
                    Some(c.rev),
                    PutPayload::Op(insert_op("a/b", "x")),
                    check,
                )
                .unwrap();
            let guards = [guard("d", c.rev)];
            let writes = [
                write("d", insert_op("a/c", "y")),
                write("d", insert_op("a/e", "z")),
            ];
            let first = store.apply_txn(&guards, &writes, check).unwrap();
            assert!(!first.replayed);
            let seq = store.current_seq();
            let retry = store.apply_txn(&guards, &writes, check).unwrap();
            assert!(retry.replayed);
            assert_eq!(retry.revs, first.revs);
            assert_eq!(store.current_seq(), seq);
        });
    }

    #[test]
    fn txn_rejections_name_their_reason() {
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b)"), check).unwrap();

            let e = store.apply_txn(&[], &[], check).unwrap_err();
            assert!(matches!(e, TxnError::Rejected(_)));
            assert!(!e.retryable());

            let e = store
                .apply_txn(&[], &[write("missing", insert_op("a/b", "x"))], check)
                .unwrap_err();
            assert_eq!(e.code(), "not-found");

            let bogus = RevId {
                generation: 9,
                hash: 0xdead,
            };
            let e = store
                .apply_txn(
                    &[guard("d", bogus)],
                    &[write("d", insert_op("a/b", "x"))],
                    check,
                )
                .unwrap_err();
            assert_eq!(e.code(), "unknown-rev");

            let e = store
                .apply_txn(
                    &[guard("d", c.rev), guard("d", c.rev)],
                    &[write("d", insert_op("a/b", "x"))],
                    check,
                )
                .unwrap_err();
            assert_eq!(e.code(), "conflict");

            let del = store.delete("d", c.rev).unwrap();
            let e = store
                .apply_txn(
                    &[guard("d", del.rev)],
                    &[write("d", insert_op("a/b", "x"))],
                    check,
                )
                .unwrap_err();
            assert_eq!(e.code(), "conflict", "tombstoned target");
        });
    }

    #[test]
    fn durable_txn_recovers_atomically() {
        let dir = std::env::temp_dir().join(format!("cxu-store-txn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DurabilityConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            snapshot_every: 0, // keep every frame in the log
        };
        let store = Store::open(StoreConfig::default(), dcfg.clone()).unwrap();
        let (revs, state, guards, writes) = {
            let mut out = None;
            with_sched(|check| {
                let c1 = store.put("d1", None, content("a(b c)"), check).unwrap();
                let c2 = store.put("d2", None, content("x(y)"), check).unwrap();
                let guards = vec![guard("d1", c1.rev), guard("d2", c2.rev)];
                let writes = vec![
                    write("d1", insert_op("a/b", "p")),
                    write("d2", insert_op("x/y", "q")),
                    write("d1", insert_op("a/c", "r")),
                ];
                let o = store.apply_txn(&guards, &writes, check).unwrap();
                out = Some((o, guards, writes));
            });
            let (o, guards, writes) = out.unwrap();
            (
                o.revs,
                (
                    store.doc_revs("d1").unwrap(),
                    store.doc_revs("d2").unwrap(),
                    store.changes(0, None),
                    store.current_seq(),
                ),
                guards,
                writes,
            )
        };
        // 2 creates + 1 txn frame.
        assert_eq!(store.wal_records(), 3, "the whole txn is one frame");
        drop(store);

        let again = Store::open(StoreConfig::default(), dcfg).unwrap();
        let report = again.recovery_report().unwrap();
        assert_eq!(report.replayed_records, 3);
        assert_eq!(again.doc_revs("d1").unwrap(), state.0);
        assert_eq!(again.doc_revs("d2").unwrap(), state.1);
        assert_eq!(again.changes(0, None), state.2);
        assert_eq!(again.current_seq(), state.3);

        // The recovered alias/tree state still answers a verbatim
        // retry with a replay at the original revisions.
        with_sched(|check| {
            let retry = again.apply_txn(&guards, &writes, check).unwrap();
            assert!(retry.replayed);
            assert_eq!(retry.revs, revs);
        });
        drop(again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn txn_multi_generation_commit_invalidates_index_cache_once() {
        // Regression (satellite): one transaction advancing a document
        // several generations must invalidate the per-winner index
        // cache exactly once and rebuild against the *final* winner.
        let store = Store::default();
        with_sched(|check| {
            let c = store.put("d", None, content("a(b c e)"), check).unwrap();
            let warm = store.indexed("d", None).unwrap();
            assert_eq!(warm.rev, c.rev);

            let out = store
                .apply_txn(
                    &[guard("d", c.rev)],
                    &[
                        write("d", insert_op("a/b", "p")),
                        write("d", insert_op("a/c", "q")),
                        write("d", insert_op("a/e", "r")),
                    ],
                    check,
                )
                .unwrap();
            let final_rev = out.revs.last().unwrap().1;

            // One lookup after a three-generation commit: the cache
            // entry is gone (not a stale intermediate) and the rebuild
            // lands on the *final* winner.
            let rebuilt = store.indexed("d", None).unwrap();
            assert!(!Arc::ptr_eq(&warm, &rebuilt), "stale entry was dropped");
            assert_eq!(rebuilt.rev, final_rev);
            assert_eq!(rebuilt.index.len(), 7);
            assert!(iso::isomorphic(
                &rebuilt.tree,
                &text::parse("a(b(p) c(q) e(r))").unwrap()
            ));

            // And the rebuilt entry is cached: a second read shares it.
            // (The exact one-miss counter pin lives in
            // tests/obs_validation.rs, where the registry is serialized.)
            let hit = store.indexed("d", None).unwrap();
            assert!(Arc::ptr_eq(&rebuilt, &hit));
        });
    }

    #[test]
    fn indexed_rejects_tombstones_and_unknowns() {
        let store = Store::default();
        with_sched(|check| {
            assert!(matches!(
                store.indexed("nope", None),
                Err(StoreError::NotFound(_))
            ));
            let c = store.put("d", None, content("a"), check).unwrap();
            store
                .put("d", Some(c.rev), PutPayload::Tombstone, check)
                .unwrap();
            assert!(matches!(
                store.indexed("d", None),
                Err(StoreError::Conflict(_))
            ));
        });
    }
}
