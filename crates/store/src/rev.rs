//! Revision identifiers: `generation-hash`, in the CouchDB idiom.
//!
//! A revision id is derived, not assigned: `gen` is one more than the
//! parent's generation (1 for a fresh document), and `hash` is a
//! 64-bit FNV-1a digest of `(parent id, payload, deleted flag)`. Two
//! replicas committing the *same* edit against the *same* parent mint
//! the *same* id — which is what makes puts idempotent and winner
//! selection independent of arrival order.
//!
//! The textual form is `"{gen}-{hash:016x}"`. Because the hash prints
//! as a fixed-width lowercase hex string, lexicographic comparison of
//! the hash text coincides with numeric comparison of the `u64` — the
//! winner rule's "lexicographically greater hash" tie-break is the
//! plain integer ordering used here.

use std::fmt;
use std::str::FromStr;

/// A revision identifier: generation counter plus content hash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RevId {
    /// Distance from the document's first revision (first = 1).
    pub generation: u64,
    /// FNV-1a digest of `(parent, payload, deleted)`.
    pub hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= u64::from(b);
        *state = state.wrapping_mul(FNV_PRIME);
    }
}

impl RevId {
    /// Derives the id of the revision produced by committing `payload`
    /// (a canonical text rendering of the edit — see
    /// [`crate::store::Store`]) against `parent`. `deleted` marks
    /// tombstones, which must not collide with a live revision of
    /// otherwise identical provenance.
    pub fn derive(parent: Option<&RevId>, payload: &str, deleted: bool) -> RevId {
        let mut h = FNV_OFFSET;
        match parent {
            Some(p) => fnv1a(&mut h, p.to_string().as_bytes()),
            None => fnv1a(&mut h, b"(root)"),
        }
        fnv1a(&mut h, &[0]);
        fnv1a(&mut h, payload.as_bytes());
        fnv1a(&mut h, &[u8::from(deleted)]);
        RevId {
            generation: parent.map_or(1, |p| p.generation + 1),
            hash: h,
        }
    }
}

impl fmt::Display for RevId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{:016x}", self.generation, self.hash)
    }
}

/// Error parsing a revision id from its wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevParseError(pub String);

impl fmt::Display for RevParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad revision id: {}", self.0)
    }
}

impl std::error::Error for RevParseError {}

impl FromStr for RevId {
    type Err = RevParseError;

    fn from_str(s: &str) -> Result<RevId, RevParseError> {
        let (gen_part, hash_part) = s
            .split_once('-')
            .ok_or_else(|| RevParseError(format!("{s:?} is not of the form <gen>-<hash>")))?;
        let generation: u64 = gen_part
            .parse()
            .map_err(|_| RevParseError(format!("{s:?} has a non-numeric generation")))?;
        if generation == 0 {
            return Err(RevParseError(format!("{s:?} has generation 0")));
        }
        if hash_part.len() != 16 {
            return Err(RevParseError(format!("{s:?} hash is not 16 hex digits")));
        }
        let hash = u64::from_str_radix(hash_part, 16)
            .map_err(|_| RevParseError(format!("{s:?} has a non-hex hash")))?;
        Ok(RevId { generation, hash })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_parent_sensitive() {
        let a = RevId::derive(None, "content\0x(y)", false);
        let b = RevId::derive(None, "content\0x(y)", false);
        assert_eq!(a, b, "same edit, same id");
        assert_eq!(a.generation, 1);

        let c = RevId::derive(Some(&a), "update\0ins", false);
        assert_eq!(c.generation, 2);
        assert_ne!(c.hash, a.hash);
        let d = RevId::derive(Some(&c), "update\0ins", false);
        assert_ne!(c, d, "same edit under a different parent differs");
    }

    #[test]
    fn tombstones_do_not_collide_with_live_revisions() {
        let root = RevId::derive(None, "content\0x", false);
        let live = RevId::derive(Some(&root), "p", false);
        let dead = RevId::derive(Some(&root), "p", true);
        assert_ne!(live, dead);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let root = RevId::derive(None, "seed", false);
        for rev in [
            root,
            RevId::derive(Some(&root), "a", false),
            RevId {
                generation: 7,
                hash: 0x00ff,
            },
        ] {
            let text = rev.to_string();
            assert_eq!(text.parse::<RevId>().unwrap(), rev, "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_ids() {
        for bad in [
            "",
            "1",
            "-abc",
            "x-0000000000000000",
            "0-0000000000000000",
            "1-xyz",
            "1-00ff",              // not 16 digits
            "1-00000000000000000", // 17 digits
        ] {
            assert!(bad.parse::<RevId>().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn hex_text_ordering_matches_numeric_ordering() {
        let lo = RevId {
            generation: 3,
            hash: 0x0123,
        };
        let hi = RevId {
            generation: 3,
            hash: 0xff00_0000_0000_0000,
        };
        assert!(hi.hash > lo.hash);
        assert!(
            hi.to_string() > lo.to_string(),
            "fixed-width hex is order-preserving"
        );
    }
}
