//! Revision identifiers: `generation-hash`, in the CouchDB idiom.
//!
//! A revision id is derived, not assigned: `gen` is one more than the
//! parent's generation (1 for a fresh document), and `hash` is a
//! 128-bit SipHash-2-4 digest of `(parent id, payload, deleted flag)`.
//! Two replicas committing the *same* edit against the *same* parent
//! mint the *same* id — which is what makes puts idempotent and winner
//! selection independent of arrival order. The digest is 128 bits wide
//! so that a collision between two *different* edits against the same
//! parent (which would silently drop the second edit as a replay) needs
//! a ~2^64-work birthday search rather than the trivially constructible
//! collisions of a 64-bit FNV.
//!
//! The textual form is `"{gen}-{hash:032x}"`. Because the hash prints
//! as a fixed-width lowercase hex string, lexicographic comparison of
//! the hash text coincides with numeric comparison of the `u128` — the
//! winner rule's "lexicographically greater hash" tie-break is the
//! plain integer ordering used here.

use std::fmt;
use std::str::FromStr;

/// A revision identifier: generation counter plus content hash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RevId {
    /// Distance from the document's first revision (first = 1).
    pub generation: u64,
    /// SipHash-2-4 128-bit digest of `(parent, payload, deleted)`.
    pub hash: u128,
}

/// Fixed key for revision-id derivation. The key is a protocol
/// constant, not a secret: every replica must derive identical ids.
const REV_KEY: (u64, u64) = (0x6378_755f_7265_7631, 0x7369_7068_6173_6832);

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13) ^ v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16) ^ v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21) ^ v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17) ^ v[2];
    v[2] = v[2].rotate_left(32);
}

/// The keyed initial state shared by both output widths.
fn sip_init(key: (u64, u64)) -> [u64; 4] {
    [
        key.0 ^ 0x736f_6d65_7073_6575,
        key.1 ^ 0x646f_7261_6e64_6f6d,
        key.0 ^ 0x6c79_6765_6e65_7261,
        key.1 ^ 0x7465_6462_7974_6573,
    ]
}

/// Absorbs `data` (with the standard `len << 56` final-word padding)
/// into `v` with two compression rounds per word.
fn sip_absorb(v: &mut [u64; 4], data: &[u8]) {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        v[3] ^= m;
        sipround(v);
        sipround(v);
        v[0] ^= m;
    }
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    last[7] = data.len() as u8; // length mod 256 in the top byte
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(v);
    sipround(v);
    v[0] ^= m;
}

/// SipHash-2-4 with 128-bit output (the reference `siphash` with
/// `outlen = 16`), over `data` under `key`.
pub(crate) fn siphash24_128(key: (u64, u64), data: &[u8]) -> u128 {
    let mut v = sip_init(key);
    v[1] ^= 0xee; // 128-bit output variant
    sip_absorb(&mut v, data);
    v[2] ^= 0xee;
    for _ in 0..4 {
        sipround(&mut v);
    }
    let lo = v[0] ^ v[1] ^ v[2] ^ v[3];
    v[1] ^= 0xdd;
    for _ in 0..4 {
        sipround(&mut v);
    }
    let hi = v[0] ^ v[1] ^ v[2] ^ v[3];
    (u128::from(hi) << 64) | u128::from(lo)
}

impl RevId {
    /// Derives the id of the revision produced by committing `payload`
    /// (a canonical text rendering of the edit — see
    /// [`crate::store::Store`]) against `parent`. `deleted` marks
    /// tombstones, which must not collide with a live revision of
    /// otherwise identical provenance.
    pub fn derive(parent: Option<&RevId>, payload: &str, deleted: bool) -> RevId {
        let mut buf = Vec::with_capacity(payload.len() + 48);
        match parent {
            Some(p) => buf.extend_from_slice(p.to_string().as_bytes()),
            None => buf.extend_from_slice(b"(root)"),
        }
        buf.push(0);
        buf.extend_from_slice(payload.as_bytes());
        buf.push(u8::from(deleted));
        RevId {
            generation: parent.map_or(1, |p| p.generation + 1),
            hash: siphash24_128(REV_KEY, &buf),
        }
    }
}

impl fmt::Display for RevId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{:032x}", self.generation, self.hash)
    }
}

/// Error parsing a revision id from its wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevParseError(pub String);

impl fmt::Display for RevParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad revision id: {}", self.0)
    }
}

impl std::error::Error for RevParseError {}

impl FromStr for RevId {
    type Err = RevParseError;

    fn from_str(s: &str) -> Result<RevId, RevParseError> {
        let (gen_part, hash_part) = s
            .split_once('-')
            .ok_or_else(|| RevParseError(format!("{s:?} is not of the form <gen>-<hash>")))?;
        let generation: u64 = gen_part
            .parse()
            .map_err(|_| RevParseError(format!("{s:?} has a non-numeric generation")))?;
        if generation == 0 {
            return Err(RevParseError(format!("{s:?} has generation 0")));
        }
        if hash_part.len() != 32 {
            return Err(RevParseError(format!("{s:?} hash is not 32 hex digits")));
        }
        let hash = u128::from_str_radix(hash_part, 16)
            .map_err(|_| RevParseError(format!("{s:?} has a non-hex hash")))?;
        Ok(RevId { generation, hash })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SipHash-2-4 with the classic 64-bit output, sharing
    /// [`sip_init`]/[`sip_absorb`]/[`sipround`] with the 128-bit
    /// production path — so the paper's test vector below pins down the
    /// round function and the message padding for both widths.
    fn siphash24_64(key: (u64, u64), data: &[u8]) -> u64 {
        let mut v = sip_init(key);
        sip_absorb(&mut v, data);
        v[2] ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v);
        }
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }

    #[test]
    fn siphash_core_matches_the_paper_vector() {
        // Appendix A of the SipHash paper (Aumasson & Bernstein 2012):
        // key = 00 01 … 0f, message = 00 01 … 0e (15 bytes),
        // SipHash-2-4 output = 0xa129ca6149be45e5.
        let key = (0x0706_0504_0302_0100, 0x0f0e_0d0c_0b0a_0908);
        let msg: Vec<u8> = (0u8..15).collect();
        assert_eq!(siphash24_64(key, &msg), 0xa129_ca61_49be_45e5);
    }

    #[test]
    fn siphash_128_separates_close_inputs() {
        // The 128-bit variant differs from the 64-bit one only by the
        // documented init/finalization tweaks; sanity-check dispersion
        // and width on top of the shared-core vector above.
        let key = (1, 2);
        let a = siphash24_128(key, b"abc");
        let b = siphash24_128(key, b"abd");
        let c = siphash24_128(key, b"abc\0");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, siphash24_128(key, b"abc"), "deterministic");
        assert!(a > u128::from(u64::MAX) || b > u128::from(u64::MAX));
    }

    #[test]
    fn derivation_is_deterministic_and_parent_sensitive() {
        let a = RevId::derive(None, "content\0x(y)", false);
        let b = RevId::derive(None, "content\0x(y)", false);
        assert_eq!(a, b, "same edit, same id");
        assert_eq!(a.generation, 1);

        let c = RevId::derive(Some(&a), "update\0ins", false);
        assert_eq!(c.generation, 2);
        assert_ne!(c.hash, a.hash);
        let d = RevId::derive(Some(&c), "update\0ins", false);
        assert_ne!(c, d, "same edit under a different parent differs");
    }

    #[test]
    fn tombstones_do_not_collide_with_live_revisions() {
        let root = RevId::derive(None, "content\0x", false);
        let live = RevId::derive(Some(&root), "p", false);
        let dead = RevId::derive(Some(&root), "p", true);
        assert_ne!(live, dead);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let root = RevId::derive(None, "seed", false);
        for rev in [
            root,
            RevId::derive(Some(&root), "a", false),
            RevId {
                generation: 7,
                hash: 0x00ff,
            },
        ] {
            let text = rev.to_string();
            assert_eq!(text.parse::<RevId>().unwrap(), rev, "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_ids() {
        for bad in [
            "",
            "1",
            "-abc",
            "x-00000000000000000000000000000000",
            "0-00000000000000000000000000000000",
            "1-xyz",
            "1-0000000000000000",                  // 16 digits: the old width
            "1-000000000000000000000000000000000", // 33 digits
        ] {
            assert!(bad.parse::<RevId>().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn hex_text_ordering_matches_numeric_ordering() {
        let lo = RevId {
            generation: 3,
            hash: 0x0123,
        };
        let hi = RevId {
            generation: 3,
            hash: 0xff00_0000_0000_0000_0000_0000_0000_0000,
        };
        assert!(hi.hash > lo.hash);
        assert!(
            hi.to_string() > lo.to_string(),
            "fixed-width hex is order-preserving"
        );
    }
}
