//! Startup recovery: snapshot load plus WAL replay, outcomes only.
//!
//! The log records what the put ladder *decided* — the minted revision,
//! its parent, the payload that produced it, which rung answered — not
//! what the client asked. Recovery therefore never re-runs a detector:
//! it inserts the recorded revisions verbatim, in log order, into fresh
//! revision trees. Because insertion is idempotent and the winner rule
//! depends only on the revision *set*, replaying a log over a snapshot
//! that already contains a prefix of it is a no-op for the overlap —
//! which is what makes the snapshot/compaction race crash-safe.
//!
//! Replay restores three things per document: the revision tree, the
//! changes-feed slot (the document's latest commit sequence), and the
//! merge-alias map (base-derived replay id → merge-minted rev). The
//! alias map must survive restarts: a client retrying a merged put
//! against the recovered server has to land on the same noop answer it
//! would have gotten before the crash.

use crate::rev::RevId;
use crate::revtree::{RevNode, RevTree};
use crate::wal::{Scan, WalCorrupt, WalError};
use cxu_gen::json::Json;
use cxu_gen::wire;
use cxu_tree::text;
use std::collections::HashMap;
use std::str::FromStr;

/// What [`crate::store::Store::open`] found on disk, exposed through
/// `recovery_report()` and printed by `cxu serve` on startup.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded (false on first boot).
    pub snapshot_loaded: bool,
    /// The sequence number the snapshot carried.
    pub snapshot_seq: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Trailing bytes discarded by the torn-tail rule.
    pub torn_bytes: u64,
    /// Documents live after recovery.
    pub docs: usize,
    /// Revisions live after recovery.
    pub revisions: u64,
    /// The store's sequence number after recovery.
    pub seq: u64,
}

impl RecoveryReport {
    /// The report as JSON (what the crash harness collects).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("snapshot_loaded", Json::from(self.snapshot_loaded)),
            ("snapshot_seq", Json::from(self.snapshot_seq)),
            ("replayed_records", Json::from(self.replayed_records)),
            ("torn_bytes", Json::from(self.torn_bytes)),
            ("docs", Json::from(self.docs)),
            ("revisions", Json::from(self.revisions)),
            ("seq", Json::from(self.seq)),
        ])
    }
}

/// One document's recovered state.
pub(crate) struct RecoveredDoc {
    pub revs: RevTree,
    pub seq: u64,
    pub aliases: HashMap<RevId, RevId>,
}

/// The whole store's recovered state.
pub(crate) struct Recovered {
    pub docs: HashMap<String, RecoveredDoc>,
    pub seq: u64,
    pub revisions: u64,
    pub report: RecoveryReport,
}

fn corrupt(reason: String) -> WalError {
    WalError::Corrupt(WalCorrupt { offset: 0, reason })
}

fn rev_field(v: &Json, key: &str) -> Result<RevId, WalError> {
    let s = v
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt(format!("record missing {key:?}")))?;
    RevId::from_str(s).map_err(|e| corrupt(format!("record {key:?}: {e}")))
}

/// Renders one revision's node fields (shared by WAL records and
/// snapshot entries).
fn node_fields(rev: &RevId, node: &RevNode) -> Vec<(&'static str, Json)> {
    let mut out = vec![("rev", Json::str(rev.to_string()))];
    if let Some(p) = &node.parent {
        out.push(("parent", Json::str(p.to_string())));
    }
    out.push(("deleted", Json::from(node.deleted)));
    out.push(("seq", Json::from(node.seq)));
    if let Some(c) = &node.content {
        out.push(("content", Json::str(text::to_text(c))));
    }
    if let Some(u) = &node.op {
        out.push(("op", wire::update_to_json(u)));
    }
    out
}

fn node_from_json(v: &Json) -> Result<(RevId, RevNode), WalError> {
    let rev = rev_field(v, "rev")?;
    let parent = match v.get("parent") {
        Some(_) => Some(rev_field(v, "parent")?),
        None => None,
    };
    let deleted = v.get("deleted").and_then(Json::as_bool).unwrap_or(false);
    let seq = v.get("seq").and_then(Json::as_u64).unwrap_or(0);
    let content = match v.get("content").and_then(Json::as_str) {
        Some(s) => {
            Some(text::parse(s).map_err(|e| corrupt(format!("record content for {rev}: {e}")))?)
        }
        None => None,
    };
    let op = match v.get("op") {
        Some(j) => Some(
            wire::update_from_json(j).map_err(|e| corrupt(format!("record op for {rev}: {e}")))?,
        ),
        None => None,
    };
    Ok((
        rev,
        RevNode {
            parent,
            deleted,
            content,
            op,
            seq,
        },
    ))
}

/// Renders one commit's WAL record as a JSON value (the body of a
/// standalone frame, or one element of a transaction frame).
pub(crate) fn record_json(
    doc_id: &str,
    rev: &RevId,
    node: &RevNode,
    result: &'static str,
    alias: Option<&RevId>,
) -> Json {
    let mut fields = vec![("doc", Json::str(doc_id)), ("result", Json::str(result))];
    fields.extend(node_fields(rev, node));
    if let Some(a) = alias {
        fields.push(("alias", Json::str(a.to_string())));
    }
    Json::obj(fields)
}

/// Renders one commit's WAL record body.
pub(crate) fn record_body(
    doc_id: &str,
    rev: &RevId,
    node: &RevNode,
    result: &'static str,
    alias: Option<&RevId>,
) -> String {
    record_json(doc_id, rev, node, result, alias).to_string()
}

/// Renders a transaction frame: every commit of one atomic transaction
/// inside a single checksummed WAL record. Atomicity falls out of the
/// framing — the frame has one checksum, so the torn-tail rule keeps
/// either the whole transaction or none of it; a partial transaction
/// cannot survive a crash.
pub(crate) fn txn_body(records: Vec<Json>) -> String {
    Json::obj(vec![("txn", Json::Arr(records))]).to_string()
}

/// Renders the snapshot body for the given live state. Documents and
/// revisions are sorted so identical states produce identical bytes.
pub(crate) fn snapshot_body<'a>(
    seq: u64,
    docs: impl Iterator<Item = (&'a str, &'a RevTree, u64, &'a HashMap<RevId, RevId>)>,
) -> String {
    let mut entries: Vec<(&str, &RevTree, u64, &HashMap<RevId, RevId>)> = docs.collect();
    entries.sort_by_key(|(id, ..)| *id);
    let docs_json: Vec<Json> = entries
        .into_iter()
        .map(|(id, revs, doc_seq, aliases)| {
            let mut nodes: Vec<(&RevId, &RevNode)> = revs.iter().collect();
            nodes.sort_by_key(|(r, _)| **r);
            let revs_json: Vec<Json> = nodes
                .into_iter()
                .map(|(r, n)| Json::obj(node_fields(r, n)))
                .collect();
            let mut alias_pairs: Vec<(&RevId, &RevId)> = aliases.iter().collect();
            alias_pairs.sort();
            let aliases_json: Vec<Json> = alias_pairs
                .into_iter()
                .map(|(a, b)| Json::Arr(vec![Json::str(a.to_string()), Json::str(b.to_string())]))
                .collect();
            Json::obj(vec![
                ("id", Json::str(id)),
                ("seq", Json::from(doc_seq)),
                ("aliases", Json::Arr(aliases_json)),
                ("revs", Json::Arr(revs_json)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("v", Json::from(1u64)),
        ("seq", Json::from(seq)),
        ("docs", Json::Arr(docs_json)),
    ])
    .to_string()
}

/// Replays one commit record (a standalone frame's body, or one element
/// of a transaction frame) into the recovered state.
fn apply_record(
    v: &Json,
    docs: &mut HashMap<String, RecoveredDoc>,
    seq: &mut u64,
    revisions: &mut u64,
) -> Result<(), WalError> {
    let doc_id = v
        .get("doc")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("wal record missing doc".to_owned()))?;
    let (rev, node) = node_from_json(v)?;
    let node_seq = node.seq;
    let doc = docs
        .entry(doc_id.to_owned())
        .or_insert_with(|| RecoveredDoc {
            revs: RevTree::new(),
            seq: 0,
            aliases: HashMap::new(),
        });
    if doc.revs.insert(rev, node) {
        *revisions += 1;
    }
    doc.seq = doc.seq.max(node_seq);
    *seq = (*seq).max(node_seq);
    if let Some(a) = v.get("alias") {
        let from = a
            .as_str()
            .and_then(|s| RevId::from_str(s).ok())
            .ok_or_else(|| corrupt("wal record alias".to_owned()))?;
        doc.aliases.insert(from, rev);
    }
    Ok(())
}

/// Rebuilds the store's state from an optional snapshot body plus the
/// WAL scan. Counts `store.wal.replayed_on_recovery` as it goes.
pub(crate) fn rebuild(snapshot: Option<&str>, scan: &Scan) -> Result<Recovered, WalError> {
    let mut docs: HashMap<String, RecoveredDoc> = HashMap::new();
    let mut seq = 0u64;
    let mut revisions = 0u64;
    let mut snapshot_seq = 0u64;

    if let Some(body) = snapshot {
        let v = Json::parse(body).map_err(|e| corrupt(format!("snapshot: {e}")))?;
        snapshot_seq = v
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("snapshot missing seq".to_owned()))?;
        seq = snapshot_seq;
        let doc_list = v
            .get("docs")
            .and_then(Json::as_arr)
            .ok_or_else(|| corrupt("snapshot missing docs".to_owned()))?;
        for d in doc_list {
            let id = d
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| corrupt("snapshot doc missing id".to_owned()))?;
            let doc_seq = d.get("seq").and_then(Json::as_u64).unwrap_or(0);
            let mut revs = RevTree::new();
            for nj in d.get("revs").and_then(Json::as_arr).unwrap_or(&[]) {
                let (rev, node) = node_from_json(nj)?;
                if revs.insert(rev, node) {
                    revisions += 1;
                }
            }
            let mut aliases = HashMap::new();
            for pair in d.get("aliases").and_then(Json::as_arr).unwrap_or(&[]) {
                let p = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| corrupt("snapshot alias is not a pair".to_owned()))?;
                let from = p[0]
                    .as_str()
                    .and_then(|s| RevId::from_str(s).ok())
                    .ok_or_else(|| corrupt("snapshot alias key".to_owned()))?;
                let to = p[1]
                    .as_str()
                    .and_then(|s| RevId::from_str(s).ok())
                    .ok_or_else(|| corrupt("snapshot alias value".to_owned()))?;
                aliases.insert(from, to);
            }
            docs.insert(
                id.to_owned(),
                RecoveredDoc {
                    revs,
                    seq: doc_seq,
                    aliases,
                },
            );
        }
    }

    let mut replayed = 0u64;
    for body in &scan.records {
        let v = Json::parse(body).map_err(|e| corrupt(format!("wal record: {e}")))?;
        if let Some(inner) = v.get("txn") {
            // A transaction frame: replay every inner commit, in the
            // order the transaction staged them. The frame counts once
            // toward `replayed_records` — one append, one replay — so
            // the WAL accounting identities keep holding.
            let inner = inner
                .as_arr()
                .ok_or_else(|| corrupt("wal txn frame is not an array".to_owned()))?;
            for record in inner {
                apply_record(record, &mut docs, &mut seq, &mut revisions)?;
            }
            replayed += 1;
            continue;
        }
        apply_record(&v, &mut docs, &mut seq, &mut revisions)?;
        replayed += 1;
    }
    cxu_obs::counter!("store.wal.replayed_on_recovery").add(replayed);

    let report = RecoveryReport {
        snapshot_loaded: snapshot.is_some(),
        snapshot_seq,
        replayed_records: replayed,
        torn_bytes: scan.torn_bytes,
        docs: docs.len(),
        revisions,
        seq,
    };
    Ok(Recovered {
        docs,
        seq,
        revisions,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(parent: Option<RevId>, deleted: bool, content: Option<&str>, seq: u64) -> RevNode {
        RevNode {
            parent,
            deleted,
            content: content.map(|s| text::parse(s).unwrap()),
            op: None,
            seq,
        }
    }

    #[test]
    fn record_body_roundtrips_through_rebuild() {
        let root = RevId::derive(None, "content\0a(b)", false);
        let child = RevId::derive(Some(&root), "content\0a(b c)", false);
        let records = vec![
            record_body(
                "d",
                &root,
                &node(None, false, Some("a(b)"), 1),
                "created",
                None,
            ),
            record_body(
                "d",
                &child,
                &node(Some(root), false, Some("a(b c)"), 2),
                "applied",
                None,
            ),
        ];
        let scan = Scan {
            records,
            offsets: vec![0, 0],
            valid_len: 0,
            torn_bytes: 3,
        };
        let r = rebuild(None, &scan).unwrap();
        assert_eq!(r.seq, 2);
        assert_eq!(r.revisions, 2);
        assert_eq!(r.report.replayed_records, 2);
        assert_eq!(r.report.torn_bytes, 3);
        assert!(!r.report.snapshot_loaded);
        let doc = &r.docs["d"];
        assert_eq!(doc.revs.winner(), Some(child));
        assert_eq!(doc.seq, 2);
    }

    #[test]
    fn alias_records_restore_the_alias_map() {
        let root = RevId::derive(None, "content\0a(b)", false);
        let merged = RevId::derive(Some(&root), "update\0x", false);
        let alias = RevId::derive(Some(&root), "update\0y", false);
        let scan = Scan {
            records: vec![
                record_body(
                    "d",
                    &root,
                    &node(None, false, Some("a(b)"), 1),
                    "created",
                    None,
                ),
                record_body(
                    "d",
                    &merged,
                    &node(Some(root), false, Some("a(b)"), 2),
                    "merged",
                    Some(&alias),
                ),
            ],
            offsets: vec![0, 0],
            valid_len: 0,
            torn_bytes: 0,
        };
        let r = rebuild(None, &scan).unwrap();
        assert_eq!(r.docs["d"].aliases.get(&alias), Some(&merged));
    }

    #[test]
    fn snapshot_roundtrips_and_replay_over_it_is_idempotent() {
        let root = RevId::derive(None, "content\0a(b)", false);
        let mut revs = RevTree::new();
        revs.insert(root, node(None, false, Some("a(b)"), 1));
        let aliases: HashMap<RevId, RevId> = HashMap::new();
        let body = snapshot_body(1, vec![("d", &revs, 1u64, &aliases)].into_iter());

        // Replaying the same commit the snapshot already holds changes
        // nothing (the crash-between-snapshot-and-reset case).
        let scan = Scan {
            records: vec![record_body(
                "d",
                &root,
                &node(None, false, Some("a(b)"), 1),
                "created",
                None,
            )],
            offsets: vec![0],
            valid_len: 0,
            torn_bytes: 0,
        };
        let r = rebuild(Some(&body), &scan).unwrap();
        assert_eq!(r.revisions, 1, "idempotent overlap");
        assert_eq!(r.seq, 1);
        assert!(r.report.snapshot_loaded);
        assert_eq!(r.report.snapshot_seq, 1);
    }

    #[test]
    fn snapshot_body_is_deterministic() {
        let root = RevId::derive(None, "content\0a", false);
        let mut t1 = RevTree::new();
        t1.insert(root, node(None, false, Some("a"), 1));
        let a: HashMap<RevId, RevId> = HashMap::new();
        let b1 = snapshot_body(1, vec![("d", &t1, 1u64, &a)].into_iter());
        let b2 = snapshot_body(1, vec![("d", &t1, 1u64, &a)].into_iter());
        assert_eq!(b1, b2);
    }

    #[test]
    fn txn_frames_replay_every_inner_commit_but_count_once() {
        let r1 = RevId::derive(None, "content\0a(b)", false);
        let r2 = RevId::derive(None, "content\0x(y)", false);
        let c1 = RevId::derive(Some(&r1), "update\0u1", false);
        let c2 = RevId::derive(Some(&r2), "update\0u2", false);
        let records = vec![
            record_body(
                "d1",
                &r1,
                &node(None, false, Some("a(b)"), 1),
                "created",
                None,
            ),
            record_body(
                "d2",
                &r2,
                &node(None, false, Some("x(y)"), 2),
                "created",
                None,
            ),
            txn_body(vec![
                record_json(
                    "d1",
                    &c1,
                    &node(Some(r1), false, Some("a(b c)"), 3),
                    "applied",
                    None,
                ),
                record_json(
                    "d2",
                    &c2,
                    &node(Some(r2), false, Some("x(y z)"), 4),
                    "applied",
                    Some(&r1),
                ),
            ]),
        ];
        let scan = Scan {
            records,
            offsets: vec![0, 0, 0],
            valid_len: 0,
            torn_bytes: 0,
        };
        let r = rebuild(None, &scan).unwrap();
        assert_eq!(r.seq, 4);
        assert_eq!(r.revisions, 4);
        assert_eq!(r.report.replayed_records, 3, "one frame, one replay");
        assert_eq!(r.docs["d1"].revs.winner(), Some(c1));
        assert_eq!(r.docs["d2"].revs.winner(), Some(c2));
        assert_eq!(r.docs["d1"].seq, 3);
        assert_eq!(r.docs["d2"].seq, 4);
        assert_eq!(
            r.docs["d2"].aliases.get(&r1),
            Some(&c2),
            "inner aliases restore"
        );

        // A malformed frame fails loudly, like any other record.
        let scan = Scan {
            records: vec![r#"{"txn": 7}"#.to_owned()],
            offsets: vec![0],
            valid_len: 0,
            torn_bytes: 0,
        };
        assert!(rebuild(None, &scan).is_err());
    }

    #[test]
    fn garbage_records_fail_loudly() {
        for bad in [
            "not json",
            r#"{"rev":"1-00"}"#,           // bad rev, no doc
            r#"{"doc":"d"}"#,              // no rev
            r#"{"doc":"d","rev":"1-zz"}"#, // unparseable rev
        ] {
            let scan = Scan {
                records: vec![bad.to_owned()],
                offsets: vec![0],
                valid_len: 0,
                torn_bytes: 0,
            };
            assert!(rebuild(None, &scan).is_err(), "{bad:?}");
        }
    }
}
