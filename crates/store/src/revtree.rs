//! Per-document revision trees and the deterministic winner rule.
//!
//! Every named document is a tree of revisions (not to be confused with
//! the XML trees the revisions *contain*). Concurrent edits against the
//! same base become sibling revisions; the current version of the
//! document is the **winner** leaf, chosen by a rule that depends only
//! on the set of revisions present — never on arrival order — so every
//! replica that holds the same revisions agrees on the winner:
//!
//! 1. a non-deleted leaf beats a deleted (tombstone) leaf;
//! 2. among equals, the higher generation wins (the longer edit
//!    history);
//! 3. among equals, the lexicographically greater hash wins (an
//!    arbitrary but universal tie-break; see [`crate::rev`] for why
//!    text and numeric order coincide).
//!
//! Insertion tolerates any order, including children before parents —
//! a parent referenced by an edge counts as an interior node even
//! before (or without) its own arrival. That property is what the
//! permutation tests in `tests/store_validation.rs` pin down.

use crate::rev::RevId;
use cxu_ops::Update;
use cxu_tree::Tree;
use std::collections::{HashMap, HashSet};

/// One revision: its place in the tree plus what it carries.
#[derive(Clone, Debug)]
pub struct RevNode {
    /// Parent revision; `None` for a document's first revision.
    pub parent: Option<RevId>,
    /// Tombstone flag.
    pub deleted: bool,
    /// The document content at this revision (`None` for tombstones).
    pub content: Option<Tree>,
    /// The update that produced this revision from its parent, when the
    /// revision was made by `doc_put` of an operation. Creations, full
    /// replacements, and tombstones carry `None` — a merge cannot
    /// reason across them, so chains containing such links never
    /// auto-merge (see [`crate::store::Store`]).
    pub op: Option<Update>,
    /// Store-wide sequence number at commit time (0 for revisions
    /// inserted directly, e.g. in tests).
    pub seq: u64,
}

/// A document's revision tree.
#[derive(Clone, Debug, Default)]
pub struct RevTree {
    nodes: HashMap<RevId, RevNode>,
    /// Revisions referenced as a parent by at least one edge. Kept
    /// separately from `nodes` so insertion order cannot matter: an
    /// edge may name a parent that has not arrived (yet).
    interior: HashSet<RevId>,
}

impl RevTree {
    /// An empty revision tree.
    pub fn new() -> RevTree {
        RevTree::default()
    }

    /// Inserts a revision. Returns `false` (and changes nothing) if the
    /// id is already present — insertion is idempotent, which is what
    /// makes replayed puts no-ops.
    pub fn insert(&mut self, rev: RevId, node: RevNode) -> bool {
        if self.nodes.contains_key(&rev) {
            return false;
        }
        if let Some(parent) = node.parent {
            self.interior.insert(parent);
        }
        self.nodes.insert(rev, node);
        true
    }

    /// Whether `rev` is present.
    pub fn contains(&self, rev: &RevId) -> bool {
        self.nodes.contains_key(rev)
    }

    /// The revision's node, if present.
    pub fn get(&self, rev: &RevId) -> Option<&RevNode> {
        self.nodes.get(rev)
    }

    /// Number of revisions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds no revisions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `rev` is a leaf (present and not a parent of anything).
    pub fn is_leaf(&self, rev: &RevId) -> bool {
        self.nodes.contains_key(rev) && !self.interior.contains(rev)
    }

    /// All leaves, sorted by `(generation, hash)` for deterministic
    /// iteration.
    pub fn leaves(&self) -> Vec<RevId> {
        let mut out: Vec<RevId> = self
            .nodes
            .keys()
            .filter(|r| !self.interior.contains(r))
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// The winner leaf under the three-rule ordering, or `None` when
    /// the tree is empty. Deterministic in the revision *set*: any
    /// insertion order yields the same answer.
    pub fn winner(&self) -> Option<RevId> {
        self.nodes
            .iter()
            .filter(|(r, _)| !self.interior.contains(r))
            .max_by_key(|(r, n)| (!n.deleted, r.generation, r.hash))
            .map(|(r, _)| *r)
    }

    /// The live leaves that lost: every non-deleted leaf except the
    /// winner, sorted. These are the document's open conflicts.
    pub fn conflicts(&self) -> Vec<RevId> {
        let winner = self.winner();
        let mut out: Vec<RevId> = self
            .nodes
            .iter()
            .filter(|(r, n)| !n.deleted && !self.interior.contains(r) && Some(**r) != winner)
            .map(|(r, _)| *r)
            .collect();
        out.sort_unstable();
        out
    }

    /// Iterates over every revision and its node, in arbitrary order
    /// (snapshot serialization sorts; see `recovery`).
    pub fn iter(&self) -> impl Iterator<Item = (&RevId, &RevNode)> {
        self.nodes.iter()
    }

    /// The revisions strictly between `ancestor` (exclusive) and
    /// `descendant` (inclusive), oldest first, or `None` when
    /// `ancestor` is not an ancestor of `descendant` (or either id is
    /// unknown).
    pub fn chain(&self, ancestor: &RevId, descendant: &RevId) -> Option<Vec<RevId>> {
        if !self.nodes.contains_key(ancestor) {
            return None;
        }
        let mut path = Vec::new();
        let mut at = *descendant;
        loop {
            if at == *ancestor {
                path.reverse();
                return Some(path);
            }
            let node = self.nodes.get(&at)?;
            path.push(at);
            at = node.parent?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare(parent: Option<RevId>, deleted: bool) -> RevNode {
        RevNode {
            parent,
            deleted,
            content: None,
            op: None,
            seq: 0,
        }
    }

    fn rev(parent: Option<&RevId>, payload: &str, deleted: bool) -> RevId {
        RevId::derive(parent, payload, deleted)
    }

    #[test]
    fn live_leaf_beats_deeper_tombstone() {
        let mut t = RevTree::new();
        let root = rev(None, "seed", false);
        let live = rev(Some(&root), "a", false);
        let dead_mid = rev(Some(&root), "b", false);
        let dead = rev(Some(&dead_mid), "b2", true);
        t.insert(root, bare(None, false));
        t.insert(live, bare(Some(root), false));
        t.insert(dead_mid, bare(Some(root), false));
        t.insert(dead, bare(Some(dead_mid), true));
        // The tombstone has generation 3 > 2 but rule 1 outranks it.
        assert_eq!(t.winner(), Some(live));
        assert!(t.conflicts().is_empty());
    }

    #[test]
    fn all_deleted_falls_back_to_deepest_tombstone() {
        let mut t = RevTree::new();
        let root = rev(None, "seed", false);
        let d1 = rev(Some(&root), "x", true);
        let mid = rev(Some(&root), "y", false);
        let d2 = rev(Some(&mid), "y2", true);
        t.insert(root, bare(None, false));
        t.insert(d1, bare(Some(root), true));
        t.insert(mid, bare(Some(root), false));
        t.insert(d2, bare(Some(mid), true));
        let w = t.winner().unwrap();
        assert_eq!(w, d2, "higher generation among tombstones");
        assert!(t.get(&w).unwrap().deleted);
    }

    #[test]
    fn same_generation_ties_break_by_hash() {
        let mut t = RevTree::new();
        let root = rev(None, "seed", false);
        let a = rev(Some(&root), "left", false);
        let b = rev(Some(&root), "right", false);
        t.insert(root, bare(None, false));
        t.insert(a, bare(Some(root), false));
        t.insert(b, bare(Some(root), false));
        let expect = if a.hash > b.hash { a } else { b };
        let loser = if a.hash > b.hash { b } else { a };
        assert_eq!(t.winner(), Some(expect));
        assert_eq!(t.conflicts(), vec![loser]);
    }

    #[test]
    fn insertion_is_idempotent_and_order_free() {
        let mut fwd = RevTree::new();
        let mut rev_order = RevTree::new();
        let root = rev(None, "seed", false);
        let child = rev(Some(&root), "c", false);
        assert!(fwd.insert(root, bare(None, false)));
        assert!(fwd.insert(child, bare(Some(root), false)));
        assert!(
            !fwd.insert(child, bare(Some(root), false)),
            "replay is a no-op"
        );
        // Child arrives before its parent: same leaves, same winner.
        assert!(rev_order.insert(child, bare(Some(root), false)));
        assert_eq!(
            rev_order.winner(),
            Some(child),
            "parent edge already counts"
        );
        assert!(rev_order.insert(root, bare(None, false)));
        assert_eq!(fwd.winner(), rev_order.winner());
        assert_eq!(fwd.leaves(), rev_order.leaves());
    }

    #[test]
    fn chain_walks_ancestry_oldest_first() {
        let mut t = RevTree::new();
        let r1 = rev(None, "seed", false);
        let r2 = rev(Some(&r1), "a", false);
        let r3 = rev(Some(&r2), "b", false);
        let side = rev(Some(&r1), "s", false);
        t.insert(r1, bare(None, false));
        t.insert(r2, bare(Some(r1), false));
        t.insert(r3, bare(Some(r2), false));
        t.insert(side, bare(Some(r1), false));
        assert_eq!(t.chain(&r1, &r3), Some(vec![r2, r3]));
        assert_eq!(t.chain(&r1, &r1), Some(vec![]));
        assert_eq!(t.chain(&r2, &side), None, "not an ancestor");
        assert_eq!(t.chain(&r3, &r2), None, "wrong direction");
    }
}
