//! The write-ahead log: length-prefixed, SipHash-checksummed frames.
//!
//! Every state-changing commit appends one frame *before* the in-memory
//! revision tree mutates, so a crash at any instant leaves the disk at
//! or ahead of memory — never behind it. A frame is
//!
//! ```text
//! [u32 LE body length][u64 LE checksum][body bytes]
//! ```
//!
//! where the checksum is the low 64 bits of the store's SipHash-2-4-128
//! core (the same keyed function revision ids use, under a distinct
//! fixed key) over the body. The body is one JSON object carrying the
//! ladder's *outcome* — the minted rev, its parent, the payload, the
//! result bucket — so recovery replays commits verbatim and never
//! re-runs the detectors.
//!
//! # The torn-tail rule
//!
//! A crash can tear the **last** frame: the length prefix may promise
//! more bytes than were flushed, or the body may be half-written so the
//! checksum fails. [`scan`] discards exactly that suffix (truncation on
//! the next open makes it physical). Anything else — a checksum
//! mismatch with more frames after it, a body that is not valid JSON, a
//! length beyond [`MAX_RECORD_BYTES`] mid-log — is *corruption*, not
//! tearing, and fails loudly: silently skipping an interior record
//! would resurrect a store whose revision trees disagree with every ack
//! the server ever sent.
//!
//! # Error discipline
//!
//! [`Wal::append`] either makes the whole frame durable-per-policy or
//! leaves the file exactly as it was: on any write or sync error the
//! tail is rewound to the pre-append length. If the rewind itself fails
//! the log is **poisoned** — every later append is refused — because a
//! file in an unknown state must not accept frames whose offsets we can
//! no longer trust.

use crate::rev::siphash24_128;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The log's file name inside a store's data directory.
pub const WAL_FILE: &str = "wal.cxu";

/// Bytes of frame header: u32 length + u64 checksum.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Sanity cap on one record body. A length prefix beyond this mid-log
/// is corruption (no legitimate commit is this large).
pub const MAX_RECORD_BYTES: usize = 1 << 26;

/// Fixed key for WAL frame checksums. A protocol constant (not a
/// secret) distinct from the revision-id key, so a frame body can never
/// masquerade as a revision digest or vice versa.
const WAL_KEY: (u64, u64) = (0x6378_755f_7761_6c31, 0x6368_6563_6b73_756d);

/// The checksum of one frame body: low 64 bits of SipHash-2-4-128.
pub fn checksum(body: &[u8]) -> u64 {
    siphash24_128(WAL_KEY, body) as u64
}

/// Encodes one frame (header + body) ready to append.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// When appends reach the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append; an ack implies the record survives
    /// power loss.
    Always,
    /// `fsync` at most once per interval; a crash loses at most the
    /// last interval's acks (process death alone loses nothing — the
    /// kernel holds the written pages).
    Interval(Duration),
    /// Never `fsync` explicitly; durability rides on the OS cache.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `never`, or `interval` (use
    /// `--fsync-interval-ms` to size it; this default is 100ms).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(Duration::from_millis(100))),
            _ => None,
        }
    }

    /// The CLI spelling back.
    pub fn name(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Interval(_) => "interval",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Mid-log corruption: the log cannot be trusted and recovery refuses
/// to guess. Carries the byte offset of the bad frame and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalCorrupt {
    /// Byte offset of the offending frame's header.
    pub offset: u64,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for WalCorrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wal corrupt at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for WalCorrupt {}

/// What [`scan`] found: the decoded record bodies, where each frame
/// starts, how much of the file is trustworthy, and how many trailing
/// bytes were torn.
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// Record bodies, in log order (raw JSON text; the recovery layer
    /// parses them).
    pub records: Vec<String>,
    /// Byte offset of each record's frame header (parallel to
    /// `records`). Exposed so tests can truncate a log mid-record.
    pub offsets: Vec<u64>,
    /// Length of the valid prefix; the file is truncated here on open.
    pub valid_len: u64,
    /// Bytes past `valid_len` discarded by the torn-tail rule.
    pub torn_bytes: u64,
}

/// Decodes a log image, applying the torn-tail rule. `Err` means
/// mid-log corruption (never a torn tail).
pub fn scan(bytes: &[u8]) -> Result<Scan, WalCorrupt> {
    let total = bytes.len() as u64;
    let mut out = Scan::default();
    let mut off = 0usize;
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        if remaining < FRAME_HEADER_BYTES {
            break; // torn: not even a whole header
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().expect("8 bytes"));
        let body_start = off + FRAME_HEADER_BYTES;
        let Some(frame_end) = body_start.checked_add(len) else {
            break; // torn: absurd length can only be a half-written tail
        };
        if frame_end > bytes.len() {
            break; // torn: the frame promises bytes that never landed
        }
        if len > MAX_RECORD_BYTES {
            // The full frame *is* present, so this is not a tail being
            // torn — the length field itself is garbage mid-log.
            return Err(WalCorrupt {
                offset: off as u64,
                reason: format!("record length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"),
            });
        }
        let body = &bytes[body_start..frame_end];
        if checksum(body) != sum {
            if frame_end == bytes.len() {
                break; // torn: the final frame's body was half-flushed
            }
            return Err(WalCorrupt {
                offset: off as u64,
                reason: "checksum mismatch with records following".to_owned(),
            });
        }
        let text = std::str::from_utf8(body).map_err(|_| WalCorrupt {
            offset: off as u64,
            reason: "record body is not UTF-8 despite a valid checksum".to_owned(),
        })?;
        out.records.push(text.to_owned());
        out.offsets.push(off as u64);
        off = frame_end;
        out.valid_len = off as u64;
    }
    out.torn_bytes = total - out.valid_len;
    Ok(out)
}

/// The append-side handle. One per store; lives inside the store lock.
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Valid length — every byte below this is a whole, checksummed
    /// frame (and synced, under `Always`).
    len: u64,
    /// Frames currently in the file.
    records: u64,
    last_sync: Instant,
    dirty: bool,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `dir/wal.cxu`, scans it,
    /// and truncates any torn tail so the next append starts on a frame
    /// boundary. Returns the handle plus the scan for replay.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<(Wal, Scan), WalError> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| WalError::Io(format!("open {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| WalError::Io(format!("read {}: {e}", path.display())))?;
        let scan = scan(&bytes).map_err(WalError::Corrupt)?;
        if scan.torn_bytes > 0 {
            file.set_len(scan.valid_len)
                .map_err(|e| WalError::Io(format!("truncate torn tail: {e}")))?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))
            .map_err(|e| WalError::Io(format!("seek {}: {e}", path.display())))?;
        let wal = Wal {
            file,
            path,
            policy,
            len: scan.valid_len,
            records: scan.records.len() as u64,
            last_sync: Instant::now(),
            dirty: false,
            poisoned: false,
        };
        Ok((wal, scan))
    }

    /// Appends one record and makes it durable per policy. On error the
    /// file is rewound to its pre-append length (or the log poisoned if
    /// even that fails); the in-memory store must not apply the commit.
    pub fn append(&mut self, body: &[u8]) -> Result<(), WalError> {
        if self.poisoned {
            cxu_obs::counter!("store.wal.append_errors").inc();
            return Err(WalError::Io(
                "wal poisoned by an earlier failure".to_owned(),
            ));
        }
        let frame = encode_frame(body);
        if cxu_runtime::failpoints::fire("store::wal::append") {
            cxu_obs::counter!("store.wal.append_errors").inc();
            return Err(WalError::Io("injected append fault".to_owned()));
        }
        if cxu_runtime::failpoints::fire("store::wal::short_write") {
            // Model a crash mid-write: half the frame reaches the disk
            // and the process can no longer trust the file. The torn
            // half-frame is exactly what the next open's scan discards.
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            let _ = self.file.flush();
            self.poisoned = true;
            cxu_obs::counter!("store.wal.append_errors").inc();
            return Err(WalError::Io("injected short write".to_owned()));
        }
        if let Err(e) = self.file.write_all(&frame) {
            cxu_obs::counter!("store.wal.append_errors").inc();
            self.rewind();
            return Err(WalError::Io(format!("append: {e}")));
        }
        self.dirty = true;
        if let Err(e) = self.maybe_sync() {
            // The frame is on disk but not durable; acking it would
            // promise what `Always` cannot deliver. Take it back out.
            cxu_obs::counter!("store.wal.append_errors").inc();
            self.rewind();
            return Err(e);
        }
        self.len += frame.len() as u64;
        self.records += 1;
        cxu_obs::counter!("store.wal.appended").inc();
        cxu_obs::counter!("store.wal.bytes").add(frame.len() as u64);
        Ok(())
    }

    /// Restores the file to the last known-good length after a failed
    /// append. Poisons the log when the restore cannot be trusted.
    fn rewind(&mut self) {
        let ok = self.file.set_len(self.len).is_ok()
            && self.file.seek(SeekFrom::Start(self.len)).is_ok();
        if !ok {
            self.poisoned = true;
        }
    }

    /// Syncs if the policy says this append must (or is due to).
    fn maybe_sync(&mut self) -> Result<(), WalError> {
        match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Forces written frames to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if !self.dirty {
            return Ok(());
        }
        if cxu_runtime::failpoints::fire("store::wal::sync") {
            cxu_obs::counter!("store.wal.sync_errors").inc();
            return Err(WalError::Io("injected fsync fault".to_owned()));
        }
        match self.file.sync_data() {
            Ok(()) => {
                self.dirty = false;
                self.last_sync = Instant::now();
                cxu_obs::counter!("store.wal.syncs").inc();
                Ok(())
            }
            Err(e) => {
                cxu_obs::counter!("store.wal.sync_errors").inc();
                Err(WalError::Io(format!("fsync {}: {e}", self.path.display())))
            }
        }
    }

    /// Empties the log after a snapshot made its records redundant.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(SeekFrom::Start(0)).map(|_| ()))
            .map_err(|e| {
                self.poisoned = true;
                WalError::Io(format!("compact {}: {e}", self.path.display()))
            })?;
        let _ = self.file.sync_data();
        cxu_obs::counter!("store.wal.compacted_away").add(self.records);
        self.len = 0;
        self.records = 0;
        self.dirty = false;
        Ok(())
    }

    /// Frames currently in the log (since the last compaction).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Valid bytes currently in the log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Whether a failed rewind has poisoned the log.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }
}

/// What can go wrong on the append side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An I/O failure (real or injected); the put fails, the store
    /// stays consistent.
    Io(String),
    /// Mid-log corruption found while opening.
    Corrupt(WalCorrupt),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "wal i/o error: {m}"),
            WalError::Corrupt(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(bodies: &[&str]) -> Vec<u8> {
        let mut out = Vec::new();
        for b in bodies {
            out.extend_from_slice(&encode_frame(b.as_bytes()));
        }
        out
    }

    #[test]
    fn scan_roundtrips_frames() {
        let img = frames(&[r#"{"a":1}"#, r#"{"b":2}"#]);
        let s = scan(&img).unwrap();
        assert_eq!(s.records, vec![r#"{"a":1}"#, r#"{"b":2}"#]);
        assert_eq!(s.valid_len, img.len() as u64);
        assert_eq!(s.torn_bytes, 0);
        assert_eq!(s.offsets[0], 0);
        assert_eq!(
            s.offsets[1],
            (FRAME_HEADER_BYTES + r#"{"a":1}"#.len()) as u64
        );
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let good = frames(&[r#"{"a":1}"#]);
        let tail = encode_frame(br#"{"b":2}"#);
        for cut in 1..tail.len() {
            let mut img = good.clone();
            img.extend_from_slice(&tail[..cut]);
            let s = scan(&img).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert_eq!(s.records.len(), 1, "cut {cut}");
            assert_eq!(s.valid_len, good.len() as u64, "cut {cut}");
            assert_eq!(s.torn_bytes, cut as u64, "cut {cut}");
        }
    }

    #[test]
    fn flipped_byte_in_final_frame_is_torn() {
        let mut img = frames(&[r#"{"a":1}"#, r#"{"b":2}"#]);
        let last = img.len() - 1;
        img[last] ^= 0xff;
        let s = scan(&img).unwrap();
        assert_eq!(s.records, vec![r#"{"a":1}"#]);
        assert!(s.torn_bytes > 0);
    }

    #[test]
    fn flipped_byte_mid_log_is_corruption() {
        let img0 = frames(&[r#"{"a":1}"#]);
        let mut img = frames(&[r#"{"a":1}"#, r#"{"b":2}"#]);
        img[FRAME_HEADER_BYTES + 2] ^= 0xff; // inside the first body
        let err = scan(&img).unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.reason.contains("checksum"), "{err}");
        drop(img0);
    }

    #[test]
    fn absurd_interior_length_is_corruption() {
        // A full frame whose length field exceeds the cap, followed by
        // enough bytes that the frame is "present".
        let mut img = Vec::new();
        let len = (MAX_RECORD_BYTES + 1) as u32;
        img.extend_from_slice(&len.to_le_bytes());
        img.extend_from_slice(&0u64.to_le_bytes());
        img.resize(FRAME_HEADER_BYTES + MAX_RECORD_BYTES + 1, 0);
        let err = scan(&img).unwrap_err();
        assert!(err.reason.contains("cap"), "{err}");
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let dir = std::env::temp_dir().join(format!("cxu-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut img = frames(&[r#"{"a":1}"#]);
        img.extend_from_slice(&encode_frame(br#"{"b":2}"#)[..5]); // torn
        std::fs::write(&path, &img).unwrap();

        let (mut wal, s) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.torn_bytes, 5);
        wal.append(br#"{"c":3}"#).unwrap();
        assert_eq!(wal.records(), 2);
        drop(wal);

        let (_, s2) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(s2.records, vec![r#"{"a":1}"#, r#"{"c":3}"#]);
        assert_eq!(s2.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = std::env::temp_dir().join(format!("cxu-wal-reset-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        wal.append(br#"{"a":1}"#).unwrap();
        wal.append(br#"{"b":2}"#).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.records(), 0);
        wal.append(br#"{"c":3}"#).unwrap();
        drop(wal);
        let (_, s) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(s.records, vec![r#"{"c":3}"#]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses_its_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert!(matches!(
            FsyncPolicy::parse("interval"),
            Some(FsyncPolicy::Interval(_))
        ));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::Always.name(), "always");
    }
}
