//! `cxu-store`: a multi-version document store whose merge policy is
//! the paper's conflict detectors.
//!
//! Documents are named; every edit mints an immutable revision in a
//! per-document [`RevTree`] (the CouchDB shape: generation-hash ids,
//! tombstones, deterministic winner). What the detectors add is the
//! step past mere conflict *preservation*: a put against a stale base
//! revision is checked pairwise against the updates that intervened,
//! and when every pair **provably commutes** the edit is replayed on
//! the current winner — one head, no sibling — instead of branching.
//! Conflicting or merely-unproven (conservative) verdicts branch, which
//! is always sound because both revisions survive and the winner rule
//! keeps every replica agreeing on the current version in the meantime.
//!
//! The crate is transport-agnostic: `cxu-serve` exposes it over NDJSON
//! (`doc_put` / `doc_get` / `doc_delete` / `doc_changes`), but the API
//! here is plain Rust — [`Store::put`] takes the detector callback as a
//! closure so callers choose the scheduler, routing, and deadline
//! discipline.

pub mod recovery;
pub mod rev;
pub mod revtree;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use recovery::RecoveryReport;
pub use rev::{RevId, RevParseError};
pub use revtree::{RevNode, RevTree};
pub use store::{
    ChangeEntry, DurabilityConfig, GetResult, IndexedDoc, PairCheck, PutOutcome, PutPayload,
    PutResult, Store, StoreConfig, StoreError, TxnError, TxnGuard, TxnOutcome, TxnWrite,
    MAX_TXN_OPS,
};
pub use wal::FsyncPolicy;
