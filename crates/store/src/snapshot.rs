//! Snapshots: one checksummed frame holding the whole live state.
//!
//! Compaction writes the store's entire document map as a single frame
//! (the WAL's own `[len][checksum][body]` format, so one codec serves
//! both files) to `snapshot.tmp`, syncs it, renames it over
//! `snapshot.cxu`, and syncs the directory — the POSIX atomic-replace
//! dance. Only *then* is the WAL reset. A crash between the two steps
//! is safe because replaying the (now redundant) log onto the snapshot
//! is idempotent: revision insertion is a no-op for present ids.
//!
//! A snapshot that fails its checksum or does not parse fails loudly on
//! open. There is no torn-tail leniency here: the rename either
//! installed a whole file or left the old one; a half-written
//! `snapshot.cxu` means something other than this code touched it.

use crate::wal::{self, WalCorrupt, WalError};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// The snapshot's file name inside a store's data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.cxu";

const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Atomically replaces the snapshot with `body` (the JSON rendering of
/// the live state; see `recovery`).
pub fn save(dir: &Path, body: &[u8]) -> Result<(), WalError> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let dst = dir.join(SNAPSHOT_FILE);
    let frame = wal::encode_frame(body);
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| WalError::Io(format!("open {}: {e}", tmp.display())))?;
    f.write_all(&frame)
        .and_then(|()| f.sync_data())
        .map_err(|e| WalError::Io(format!("write {}: {e}", tmp.display())))?;
    drop(f);
    fs::rename(&tmp, &dst).map_err(|e| {
        WalError::Io(format!(
            "rename {} over {}: {e}",
            tmp.display(),
            dst.display()
        ))
    })?;
    // Make the rename itself durable: sync the directory entry.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_data();
    }
    Ok(())
}

/// Loads the snapshot body, if one exists. `Ok(None)` when there has
/// never been a compaction; `Err` when the file exists but cannot be
/// trusted.
pub fn load(dir: &Path) -> Result<Option<String>, WalError> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(WalError::Io(format!("open {}: {e}", path.display()))),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| WalError::Io(format!("read {}: {e}", path.display())))?;
    let corrupt = |reason: String| {
        WalError::Corrupt(WalCorrupt {
            offset: 0,
            reason: format!("snapshot: {reason}"),
        })
    };
    if bytes.len() < wal::FRAME_HEADER_BYTES {
        return Err(corrupt(format!("only {} bytes", bytes.len())));
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let sum = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let body = &bytes[wal::FRAME_HEADER_BYTES..];
    if body.len() != len {
        return Err(corrupt(format!(
            "length {len} but {} body bytes",
            body.len()
        )));
    }
    if wal::checksum(body) != sum {
        return Err(corrupt("checksum mismatch".to_owned()));
    }
    let text = std::str::from_utf8(body).map_err(|_| corrupt("body is not UTF-8".to_owned()))?;
    Ok(Some(text.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cxu-snap-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = tmpdir("rt");
        assert_eq!(load(&dir).unwrap(), None, "no snapshot yet");
        save(&dir, br#"{"v":1}"#).unwrap();
        assert_eq!(load(&dir).unwrap().as_deref(), Some(r#"{"v":1}"#));
        save(&dir, br#"{"v":2}"#).unwrap();
        assert_eq!(load(&dir).unwrap().as_deref(), Some(r#"{"v":2}"#));
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "tmp file renamed away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_snapshot_fails_loudly() {
        let dir = tmpdir("tamper");
        save(&dir, br#"{"v":1}"#).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&dir), Err(WalError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
