//! Observational serial-equivalence oracle.
//!
//! The store admits concurrent transactions whenever every cross pair
//! commutes (or, with stale guards, when the intervening chain
//! commutes). The *claim* behind that admission rule is global: the
//! interleaved outcome must be indistinguishable from running the
//! committed transactions one at a time in *some* order. This module is
//! the direct, brute-force check of that claim — fold each permutation
//! of the committed programs over the initial documents with pure
//! [`Update::apply_to_copy`] and compare the results tree-by-tree under
//! isomorphism. The validation harness replays ≥1000 seeded mixes
//! through it; the oracle shares no code with the admission path, so an
//! unsound detector or a staging bug cannot hide from it.

use crate::Txn;
use cxu_tree::{iso, Tree};
use std::collections::HashMap;

/// Hard cap on the permutation search: `MAX_ORACLE_TXNS!` folds is the
/// worst case, so mixes are kept small (the harness uses 3–5).
pub const MAX_ORACLE_TXNS: usize = 8;

/// Folds `order` serially over copies of `initial`: each transaction's
/// writes apply in program order, each against the latest state of its
/// document. Documents never touched pass through unchanged.
pub fn apply_serial(initial: &HashMap<String, Tree>, order: &[&Txn]) -> HashMap<String, Tree> {
    let mut state: HashMap<String, Tree> = initial.clone();
    for t in order {
        for w in &t.writes {
            let cur = state
                .get(&w.doc)
                .unwrap_or_else(|| panic!("serial oracle: unknown document {:?}", w.doc));
            let (next, _) = w.op.apply_to_copy(cur);
            state.insert(w.doc.clone(), next);
        }
    }
    state
}

/// Whether `observed` equals `expected` document-by-document under tree
/// isomorphism (same key set, isomorphic trees).
pub fn states_match(observed: &HashMap<String, Tree>, expected: &HashMap<String, Tree>) -> bool {
    observed.len() == expected.len()
        && observed
            .iter()
            .all(|(doc, t)| expected.get(doc).is_some_and(|e| iso::isomorphic(t, e)))
}

/// Searches for a serial order of `committed` that reproduces
/// `observed` from `initial`. Returns the witnessing permutation (as
/// indices into `committed`), or `None` if no serial order matches —
/// i.e. the interleaving the store admitted was *not* serializable.
///
/// Panics if `committed` exceeds [`MAX_ORACLE_TXNS`]; the factorial
/// search is only meant for harness-sized mixes.
pub fn serial_witness(
    initial: &HashMap<String, Tree>,
    committed: &[Txn],
    observed: &HashMap<String, Tree>,
) -> Option<Vec<usize>> {
    assert!(
        committed.len() <= MAX_ORACLE_TXNS,
        "serial oracle capped at {MAX_ORACLE_TXNS} transactions, got {}",
        committed.len()
    );
    let mut perm: Vec<usize> = (0..committed.len()).collect();
    // Heap's algorithm, iterative form: visits every permutation once.
    let n = perm.len();
    let mut c = vec![0usize; n];
    let check = |perm: &[usize]| {
        let order: Vec<&Txn> = perm.iter().map(|&i| &committed[i]).collect();
        states_match(observed, &apply_serial(initial, &order))
    };
    if check(&perm) {
        return Some(perm);
    }
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            if check(&perm) {
                return Some(perm);
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::{Delete, Insert, Update};
    use cxu_pattern::xpath;
    use cxu_tree::text;

    fn ins(pattern: &str, subtree: &str) -> Update {
        Update::Insert(Insert::new(
            xpath::parse(pattern).unwrap(),
            text::parse(subtree).unwrap(),
        ))
    }

    fn state(pairs: &[(&str, &str)]) -> HashMap<String, Tree> {
        pairs
            .iter()
            .map(|(d, t)| ((*d).to_owned(), text::parse(t).unwrap()))
            .collect()
    }

    #[test]
    fn commuting_interleavings_have_a_witness() {
        let initial = state(&[("d", "a(b c)")]);
        let t1 = Txn::new().write("d", ins("a/b", "x"));
        let t2 = Txn::new().write("d", ins("a/c", "y"));
        // Either interleaved outcome is the same tree; any order works.
        let observed = state(&[("d", "a(b(x) c(y))")]);
        let w = serial_witness(&initial, &[t1, t2], &observed);
        assert!(w.is_some());
    }

    #[test]
    fn order_sensitive_outcomes_pick_the_right_permutation() {
        let initial = state(&[("d", "a(b)")]);
        // t1 deletes a/b/x (no-op before t2 runs); t2 inserts x under b.
        let t1 = Txn::new().write(
            "d",
            Update::Delete(Delete::new(xpath::parse("a/b/x").unwrap()).unwrap()),
        );
        let t2 = Txn::new().write("d", ins("a/b", "x"));
        // Outcome "a(b)" is serial order [t2, t1]; "a(b(x))" is [t1, t2].
        let gone = state(&[("d", "a(b)")]);
        let kept = state(&[("d", "a(b(x))")]);
        let w1 = serial_witness(&initial, &[t1.clone(), t2.clone()], &gone).unwrap();
        assert_eq!(w1, vec![1, 0]);
        let w2 = serial_witness(&initial, &[t1, t2], &kept).unwrap();
        assert_eq!(w2, vec![0, 1]);
    }

    #[test]
    fn non_serializable_outcomes_have_no_witness() {
        let initial = state(&[("d", "a(b)")]);
        let t1 = Txn::new().write("d", ins("a/b", "x"));
        // No serial order of [t1] alone yields "a(b(x x))".
        let observed = state(&[("d", "a(b(x x))")]);
        assert!(serial_witness(&initial, &[t1], &observed).is_none());
    }

    #[test]
    fn multi_document_folds_track_each_document() {
        let initial = state(&[("d1", "a(b)"), ("d2", "a(c)")]);
        let t = Txn::new()
            .write("d1", ins("a/b", "x"))
            .write("d2", ins("a/c", "y"))
            .write("d1", ins("a/b", "z"));
        let observed = state(&[("d1", "a(b(x z))"), ("d2", "a(c(y))")]);
        assert!(serial_witness(&initial, &[t], &observed).is_some());
        // A missing document in the observed state is a mismatch.
        let partial = state(&[("d1", "a(b(x z))")]);
        assert!(serial_witness(&initial, &[], &partial).is_none());
    }
}
