//! Transaction programs: ordered multi-op updates with snapshot-read
//! guards, and conflict analysis lifted from op pairs to whole
//! transactions.
//!
//! The paper's pairwise detectors decide whether two *operations*
//! conflict; the unit of work real clients submit is a *sequence* of
//! updates that must apply atomically or not at all — the "transaction
//! programs" direction opened by FLUX (Cheney) and rewrite-based update
//! verification (Jacquemard/Rusinowitch). This crate holds the program
//! representation shared by every layer:
//!
//! - [`Txn`] — ordered writes over one or more documents plus optional
//!   [guards](cxu_store::TxnGuard) asserting the base revision each
//!   document was observed at. Wire form via [`Txn::from_wire`] /
//!   [`Txn::to_wire`] (the [`cxu_gen::wire::TxnWire`] schema).
//! - [`Txn::conflicts_with`] — transaction-pair conflict, reduced to
//!   the routed pairwise detectors through
//!   [`Scheduler::analyze_txn_pair`]: two transactions conflict iff
//!   *any* same-document cross pair conflicts, with conservative
//!   verdicts counting as conflicts (an unproved commutation must not
//!   admit an interleaving). Intra-transaction order is preserved by
//!   construction — a program is never checked against itself.
//! - [`Txn::apply`] — atomic commit through
//!   [`Store::apply_txn`](cxu_store::Store::apply_txn): all revisions
//!   mint in a single WAL frame, or nothing changes.
//! - [`serial`] — the observational serial-equivalence oracle the
//!   validation harness replays ≥1000 seeded transaction mixes
//!   against: an admitted interleaving is correct iff its final state
//!   equals *some* serial order of the committed transactions.

use cxu_gen::wire::TxnWire;
use cxu_runtime::Deadline;
use cxu_sched::{Op, Scheduler, TxnPairReport};
use cxu_store::{PairCheck, RevId, Store, TxnError, TxnGuard, TxnOutcome, TxnWrite};
use std::fmt;
use std::str::FromStr;

pub mod serial;

/// Error turning a wire transaction into a typed program (bad revision
/// strings; op-level errors are caught earlier by the wire codec).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnParseError(pub String);

impl fmt::Display for TxnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn parse error: {}", self.0)
    }
}

impl std::error::Error for TxnParseError {}

/// A transaction program: ordered writes plus snapshot-read guards.
///
/// Guards are optional per document. A *written* document without a
/// guard applies at whatever the winner is at commit time (no
/// optimistic check, and retries are not idempotent — see
/// [`Store::apply_txn`](cxu_store::Store::apply_txn)); a guard on a
/// document that is never written is a pure snapshot-read assertion.
#[derive(Clone, Debug, Default)]
pub struct Txn {
    /// Snapshot-read guards, at most one per document.
    pub guards: Vec<TxnGuard>,
    /// The writes, in program order.
    pub writes: Vec<TxnWrite>,
}

impl Txn {
    /// An empty transaction (the store rejects it until writes are
    /// added).
    pub fn new() -> Txn {
        Txn::default()
    }

    /// Adds a snapshot-read guard.
    pub fn guard(mut self, doc: impl Into<String>, rev: RevId) -> Txn {
        self.guards.push(TxnGuard {
            doc: doc.into(),
            rev,
        });
        self
    }

    /// Appends a write.
    pub fn write(mut self, doc: impl Into<String>, op: cxu_ops::Update) -> Txn {
        self.writes.push(TxnWrite {
            doc: doc.into(),
            op,
        });
        self
    }

    /// Decodes a wire transaction, parsing guard revision strings.
    pub fn from_wire(w: &TxnWire) -> Result<Txn, TxnParseError> {
        let mut guards = Vec::with_capacity(w.guards.len());
        for (doc, rev) in &w.guards {
            let rev = RevId::from_str(rev)
                .map_err(|e| TxnParseError(format!("guard for {doc:?}: {e}")))?;
            guards.push(TxnGuard {
                doc: doc.clone(),
                rev,
            });
        }
        let writes = w
            .ops
            .iter()
            .map(|(doc, op)| TxnWrite {
                doc: doc.clone(),
                op: op.clone(),
            })
            .collect();
        Ok(Txn { guards, writes })
    }

    /// Encodes the program back into the wire schema.
    pub fn to_wire(&self) -> TxnWire {
        TxnWire {
            guards: self
                .guards
                .iter()
                .map(|g| (g.doc.clone(), g.rev.to_string()))
                .collect(),
            ops: self
                .writes
                .iter()
                .map(|w| (w.doc.clone(), w.op.clone()))
                .collect(),
        }
    }

    /// The distinct documents this transaction writes, in first-touch
    /// order. The first entry is the shard-routing key in `cxu-serve`
    /// (transactions route like `doc_*` requests).
    pub fn docs(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for w in &self.writes {
            if !out.contains(&w.doc.as_str()) {
                out.push(&w.doc);
            }
        }
        out
    }

    /// The program as `(doc, op)` pairs — the shape
    /// [`Scheduler::analyze_txn_pair`] consumes.
    pub fn sched_ops(&self) -> Vec<(String, Op)> {
        self.writes
            .iter()
            .map(|w| (w.doc.clone(), Op::Update(w.op.clone())))
            .collect()
    }

    /// Whether this transaction conflicts with `other`: any
    /// same-document cross pair conflicts, or could not be proved not
    /// to. Verdicts flow through the scheduler's interner, memo cache,
    /// and prefilter, so repeated shapes stay warm.
    pub fn conflicts_with(
        &self,
        other: &Txn,
        sched: &mut Scheduler,
        deadline: &Deadline,
    ) -> TxnPairReport {
        sched.analyze_txn_pair(&self.sched_ops(), &other.sched_ops(), deadline)
    }

    /// Commits the program atomically against `store`. Pure
    /// delegation; see [`Store::apply_txn`](cxu_store::Store::apply_txn)
    /// for the admission and durability contract.
    pub fn apply(&self, store: &Store, check: &mut PairCheck<'_>) -> Result<TxnOutcome, TxnError> {
        store.apply_txn(&self.guards, &self.writes, check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_gen::wire;
    use cxu_ops::{Insert, Update};
    use cxu_pattern::xpath;
    use cxu_sched::{Deadline, SchedConfig};
    use cxu_store::{PutPayload, StoreConfig};
    use cxu_tree::text;

    fn ins(pattern: &str, subtree: &str) -> Update {
        Update::Insert(Insert::new(
            xpath::parse(pattern).unwrap(),
            text::parse(subtree).unwrap(),
        ))
    }

    #[test]
    fn wire_roundtrip_preserves_guards_and_order() {
        let rev = RevId::derive(None, "content\0a(b)", false);
        let t = Txn::new()
            .guard("d1", rev)
            .write("d1", ins("a/b", "x"))
            .write("d2", ins("a/c", "y"))
            .write("d1", ins("a/b", "z"));
        let w = t.to_wire();
        let encoded = wire::txn_to_json(&w).to_string();
        let decoded = wire::txn_from_json(&cxu_gen::json::Json::parse(&encoded).unwrap()).unwrap();
        assert!(wire::txn_eq(&w, &decoded));
        let back = Txn::from_wire(&decoded).unwrap();
        assert_eq!(back.guards.len(), 1);
        assert_eq!(back.guards[0].rev, rev);
        assert_eq!(back.docs(), vec!["d1", "d2"]);
        assert_eq!(back.writes.len(), 3);
    }

    #[test]
    fn from_wire_rejects_bad_revisions() {
        let w = TxnWire {
            guards: vec![("d".to_owned(), "not-a-rev".to_owned())],
            ops: vec![],
        };
        assert!(Txn::from_wire(&w).is_err());
    }

    #[test]
    fn commuting_txns_interleave_and_conflicting_ones_do_not() {
        let mut sched = Scheduler::new(SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        });
        let deadline = Deadline::never();
        let a = Txn::new().write("d", ins("a/b", "x"));
        let b = Txn::new().write("d", ins("a/c", "y"));
        assert!(!a.conflicts_with(&b, &mut sched, &deadline).conflict);

        let c = Txn::new().write("d", ins("a/b/x", "deep"));
        // Deleting a/b conflicts with editing under it.
        let d = Txn::new().write(
            "d",
            Update::Delete(cxu_ops::Delete::new(xpath::parse("a/b").unwrap()).unwrap()),
        );
        assert!(c.conflicts_with(&d, &mut sched, &deadline).conflict);

        // Different documents never conflict.
        let e = Txn::new().write("other", ins("a/b", "x"));
        let r = d.conflicts_with(&e, &mut sched, &deadline);
        assert!(!r.conflict);
        assert_eq!(r.checked, 0);
    }

    #[test]
    fn apply_commits_through_the_store() {
        let store = Store::new(StoreConfig::default());
        let mut sched = Scheduler::new(SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        });
        let deadline = Deadline::never();
        let mut check = |a: &Op, b: &Op| sched.check_pair(a, b, &deadline);
        let c = store
            .put(
                "d",
                None,
                PutPayload::Content(text::parse("a(b c)").unwrap()),
                &mut check,
            )
            .unwrap();
        let t = Txn::new()
            .guard("d", c.rev)
            .write("d", ins("a/b", "x"))
            .write("d", ins("a/c", "y"));
        let out = t.apply(&store, &mut check).unwrap();
        assert_eq!(out.revs.len(), 2);
        let g = store.get("d", None, true).unwrap();
        assert!(cxu_tree::iso::isomorphic(
            g.content.as_ref().unwrap(),
            &text::parse("a(b(x) c(y))").unwrap()
        ));
    }
}
