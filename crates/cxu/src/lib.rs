//! # cxu — Conflicting XML Updates
//!
//! A from-scratch Rust implementation of
//! **"Conflicting XML Updates"** (Mukund Raghavachari and Oded Shmueli,
//! IBM Research Report / EDBT 2006): formal semantics for reads,
//! insertions, and deletions over XML trees, three conflict semantics,
//! polynomial-time conflict detection when the read pattern is linear,
//! and the full NP-side machinery (bounded witness search, witness
//! minimization, hardness reductions) for branching patterns.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof. See the README for the architecture and `EXPERIMENTS.md` for the
//! reproduction of every figure and theorem.
//!
//! ## Quick start
//!
//! ```
//! use cxu::prelude::*;
//!
//! // Parse a document and two operations.
//! let doc = cxu::tree::text::parse("x(B A)").unwrap();
//! let read = Read::new(cxu::pattern::xpath::parse("x//C").unwrap());
//! let ins = Insert::new(
//!     cxu::pattern::xpath::parse("x/B").unwrap(),
//!     cxu::tree::text::parse("C").unwrap(),
//! );
//!
//! // Static question (over ALL documents): can they conflict?
//! assert!(cxu::detect::read_insert_conflict(&read, &ins, Semantics::Node).unwrap());
//!
//! // Dynamic question (Lemma 1): does THIS document witness it?
//! assert!(cxu::witness::witnesses_insert_conflict(&read, &ins, &doc, Semantics::Node));
//! ```

/// Observability: metrics registry (counters, latency histograms) and
/// JSONL span/event tracing. See DESIGN.md § Observability for the
/// metric catalog.
pub use cxu_obs as obs;

/// Robustness runtime: cooperative deadlines, cancellation tokens, and
/// (feature-gated) deterministic fault injection.
pub use cxu_runtime as runtime;

/// Tree substrate: labels, arena trees, isomorphism, text and XML I/O.
pub use cxu_tree as tree;

/// Tree patterns, the XPath fragment, embeddings, evaluation, containment.
pub use cxu_pattern as pattern;

/// NFAs over label alphabets (the §4 matching machinery).
pub use cxu_automata as automata;

/// Operation semantics and conflict-witness checking (Lemma 1).
pub use cxu_ops as ops;

/// Conflict detection: PTIME linear algorithms and the NP side.
pub use cxu_core as core;

/// Structural document index: flat span/postings arrays, index-backed
/// pattern evaluation, and document-grounded conflict checks.
pub use cxu_index as index;

/// Workload generators for benchmarks and property tests.
pub use cxu_gen as gen;

/// DTDs and schema-aware conflict detection (§6 extension).
pub use cxu_schema as schema;

/// Batch conflict-graph scheduling: memoized pairwise detection,
/// parallel analysis, conflict-free rounds.
pub use cxu_sched as sched;

/// Multi-version document store: per-document revision trees with
/// deterministic winners, MVCC puts, and commutativity-aware
/// auto-merge backed by the pairwise detectors.
pub use cxu_store as store;

/// Transaction programs: atomic multi-op updates with snapshot-read
/// guards, transaction-pair conflict analysis, and the serial-
/// equivalence oracle.
pub use cxu_txn as txn;

/// The serving layer: NDJSON-over-TCP conflict-detection daemon with
/// bounded-queue admission control, plus the seeded load generator.
pub use cxu_serve as serve;

/// The PTIME detectors (re-exported from [`core`]).
pub use cxu_core::detect;

/// Witness checking (re-exported from [`ops`]).
pub use cxu_ops::witness;

/// The most common imports in one place.
pub mod prelude {
    pub use cxu_ops::{Delete, Insert, Read, Semantics, Update};
    pub use cxu_pattern::{Axis, Pattern};
    pub use cxu_tree::{NodeId, Symbol, Tree};
}
