//! Document-grounded conflict detection (Lemma 1 against the index).
//!
//! [`detect_grounded`] answers the same question as
//! [`cxu_ops::witness::witnesses_update_conflict`] — *does this concrete
//! document witness a conflict between read `R` and update `U` under the
//! given semantics?* — but decides it with postings intersections and
//! span containment over a prebuilt [`DocIndex`] instead of cloning the
//! tree, applying the update, and re-walking it.
//!
//! Per update kind:
//!
//! * **Delete.** The deleted region is the union of the *outermost*
//!   deletion-point spans (nested points are removed by the outer
//!   deletion). `R` over the deleted tree equals `R` over the original
//!   with those spans **masked** — spans are descendant-closed and
//!   pattern matching is monotone, so masking is exact. Node semantics
//!   compares the masked result set to the original; tree semantics also
//!   asks whether any surviving result node's span contains a
//!   modification site (the parent of an outermost point); value
//!   semantics recomputes structural codes for the proper ancestors of
//!   the deleted spans and compares deduplicated code sets.
//! * **Insert.** The update grafts a copy of `X` at every point. `R` over
//!   the result is evaluated with the **augment**: a constraint edge may
//!   also be satisfied through a copy of `X` grafted at a point
//!   (conjunctive subpatterns decompose per child, so admitting each edge
//!   independently is exact). A conflict additionally arises when the
//!   output node itself can map *into* a copy — detected by checking, for
//!   each pattern node on the root→output path, whether its parent is
//!   feasible at (or above) an insertion point while the remainder of the
//!   path embeds in `X`. Insert+value needs isomorphism codes of fresh
//!   copies interleaved with the base document; that one combination
//!   falls back to the tree-walk witness check (`index.eval.fallback`).

use crate::doc::{ahu_hash, DocIndex};
use crate::eval::{self, in_spans, Augment, Tables};
use cxu_ops::witness::witnesses_update_conflict;
use cxu_ops::{Read, Semantics, Update};
use cxu_pattern::{Axis, Pattern};
use cxu_tree::Tree;
use std::collections::HashMap;
use std::time::Instant;

/// Does `doc` witness a conflict between `read` and `update` under `sem`?
///
/// `idx` must be the index of `doc` (see [`DocIndex::from_tree`]); `doc`
/// itself is only consulted on the insert+value fallback path.
pub fn detect_grounded(
    read: &Read,
    update: &Update,
    doc: &Tree,
    idx: &DocIndex,
    sem: Semantics,
) -> bool {
    let t0 = Instant::now();
    cxu_obs::counter!("index.grounded_checks").inc();
    let out = detect_inner(read, update, doc, idx, sem);
    cxu_obs::histogram!("index.grounded_ns").record_since(t0);
    out
}

fn detect_inner(read: &Read, update: &Update, doc: &Tree, idx: &DocIndex, sem: Semantics) -> bool {
    let points = eval::eval(update.pattern(), idx);
    if points.is_empty() {
        // The update is a no-op on this document: no semantics conflicts.
        return false;
    }
    let before = eval::eval(read.pattern(), idx);
    match update {
        Update::Delete(_) => {
            // Outermost deleted spans: points are sorted preorder, so a
            // point inside the running span is nested and dropped.
            let mut spans: Vec<(u32, u32)> = Vec::new();
            for &q in &points {
                if spans.last().map_or(true, |&(_, e)| q >= e) {
                    spans.push((q, idx.end(q)));
                }
            }
            let after = eval::eval_masked(read.pattern(), idx, &spans);
            let node_diff = before != after;
            match sem {
                Semantics::Node => node_diff,
                Semantics::Tree => {
                    node_diff || {
                        // Modification sites are the parents of the
                        // outermost points; a surviving result node is
                        // "touched" iff its span contains a site.
                        let mut sites: Vec<u32> = spans
                            .iter()
                            .map(|&(q, _)| idx.parent(q).expect("deletion point is never the root"))
                            .collect();
                        sites.sort_unstable();
                        sites.dedup();
                        after.iter().any(|&u| has_in_range(&sites, u, idx.end(u)))
                    }
                }
                Semantics::Value => {
                    let new_codes = recompute_masked_codes(idx, &spans);
                    let mut cb: Vec<u64> = before.iter().map(|&u| idx.code(u)).collect();
                    let mut ca: Vec<u64> = after
                        .iter()
                        .map(|&u| new_codes.get(&u).copied().unwrap_or_else(|| idx.code(u)))
                        .collect();
                    cb.sort_unstable();
                    cb.dedup();
                    ca.sort_unstable();
                    ca.dedup();
                    cb != ca
                }
            }
        }
        Update::Insert(ins) => match sem {
            Semantics::Node | Semantics::Tree => {
                let aug = eval::build_augment(read.pattern(), ins.subtree(), points.clone());
                let tables = eval::eval_tables(read.pattern(), idx, &[], Some(&aug));
                let node_diff = tables.result != before
                    || output_reaches_copy(read.pattern(), idx, &aug, &tables);
                match sem {
                    Semantics::Node => node_diff,
                    Semantics::Tree => {
                        // Every insertion point is a modification site.
                        node_diff || before.iter().any(|&u| has_in_range(&points, u, idx.end(u)))
                    }
                    Semantics::Value => unreachable!(),
                }
            }
            Semantics::Value => {
                // Value semantics on insert compares isomorphism classes of
                // result subtrees that interleave fresh copies with base
                // nodes; fall back to the tree-walk witness check.
                cxu_obs::counter!("index.eval.fallback").inc();
                witnesses_update_conflict(read, update, doc, sem)
            }
        },
    }
}

/// Binary search: does `sorted` contain an element in `[lo, hi)`?
fn has_in_range(sorted: &[u32], lo: u32, hi: u32) -> bool {
    let i = sorted.partition_point(|&x| x < lo);
    i < sorted.len() && sorted[i] < hi
}

/// Can some embedding of `p` (with the augment's insertions applied) map
/// the output node *inside* an inserted copy of `X`? True iff for some
/// node `m` on the root→output path with parent `pm`:
///
/// * `m`'s incoming axis is `/`, `pm` is feasible at an insertion point
///   `q`, and `SUBP(m)` embeds at `X`'s root (the copy root is `q`'s
///   child); or
/// * `m`'s incoming axis is `//`, `pm` is feasible at a node whose span
///   contains an insertion point, and `SUBP(m)` embeds anywhere in `X`.
fn output_reaches_copy(p: &Pattern, idx: &DocIndex, aug: &Augment, tables: &Tables) -> bool {
    let path = p
        .path(p.root(), p.output())
        .expect("output is reachable from the root");
    for &m in &path[1..] {
        let (pm, axis) = p.parent(m).expect("non-root node on path has a parent");
        let feas_pm = &tables.feas[pm.index()];
        match axis {
            Axis::Child => {
                if aug.x_root[m.index()] && aug.points.iter().any(|&q| feas_pm.get(q)) {
                    return true;
                }
            }
            Axis::Descendant => {
                if aug.x_any[m.index()]
                    && feas_pm
                        .iter()
                        .any(|u| has_in_range(&aug.points, u, idx.end(u)))
                {
                    return true;
                }
            }
        }
    }
    false
}

/// Structural codes after masking `spans` out of the document, for every
/// node whose code changes — exactly the proper ancestors of the span
/// starts. Returns position → new code; untouched nodes keep `idx.code`.
fn recompute_masked_codes(idx: &DocIndex, spans: &[(u32, u32)]) -> HashMap<u32, u64> {
    // Collect affected ancestors (early-stop: a marked node's ancestors
    // are already collected).
    let mut affected: Vec<u32> = Vec::new();
    let mut marked = std::collections::HashSet::new();
    for &(q, _) in spans {
        let mut a = idx.parent(q);
        while let Some(v) = a {
            if !marked.insert(v) {
                break;
            }
            affected.push(v);
            a = idx.parent(v);
        }
    }
    // Children before parents: descending preorder position.
    affected.sort_unstable_by(|a, b| b.cmp(a));
    let mut out: HashMap<u32, u64> = HashMap::new();
    let mut kids: Vec<u64> = Vec::new();
    for &u in &affected {
        kids.clear();
        let mut c = u + 1;
        let e = idx.end(u);
        while c < e {
            if !is_span_start(spans, c) {
                debug_assert!(!in_spans(spans, c), "surviving child inside a masked span");
                kids.push(out.get(&c).copied().unwrap_or_else(|| idx.code(c)));
            }
            c = idx.end(c);
        }
        kids.sort_unstable();
        out.insert(u, ahu_hash(idx.label(u), &kids));
    }
    out
}

fn is_span_start(spans: &[(u32, u32)], u: u32) -> bool {
    spans.binary_search_by_key(&u, |&(s, _)| s).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::{Delete, Insert};
    use cxu_pattern::xpath;
    use cxu_tree::text;

    fn check_all(read: &str, update: Update, doc: &str) {
        let r = Read::new(xpath::parse(read).unwrap());
        let t = text::parse(doc).unwrap();
        let idx = DocIndex::from_tree(&t);
        for sem in Semantics::ALL {
            let walked = witnesses_update_conflict(&r, &update, &t, sem);
            let grounded = detect_grounded(&r, &update, &t, &idx, sem);
            assert_eq!(
                grounded, walked,
                "read {read} vs {update:?} on {doc} under {sem:?}"
            );
        }
    }

    fn ins(p: &str, x: &str) -> Update {
        Update::Insert(Insert::new(
            xpath::parse(p).unwrap(),
            text::parse(x).unwrap(),
        ))
    }

    fn del(p: &str) -> Update {
        Update::Delete(Delete::new(xpath::parse(p).unwrap()).unwrap())
    }

    #[test]
    fn paper_example_insert_conflict() {
        // §1: reading x//C conflicts with inserting C under B children.
        check_all("x//C", ins("x/B", "C"), "x(B)");
        check_all("x//C", ins("x/B", "C"), "x(B(C) B)");
        check_all("x//C", ins("x/B", "D"), "x(B)");
    }

    #[test]
    fn delete_conflicts_across_semantics() {
        check_all("a//c", del("a/b"), "a(b(c) d(c))");
        check_all("a//c", del("a/d"), "a(b(c) d(e))");
        check_all("a/b", del("a/b/c"), "a(b(c) b)");
        check_all("a", del("a//c"), "a(b(c(c)))");
    }

    #[test]
    fn value_semantics_sees_sibling_replacements() {
        // Deleting one of two isomorphic siblings leaves the *set* of
        // result values unchanged — node conflict but no value conflict.
        check_all("a/b", del("a/b[x]"), "a(b(x) b(x))");
        check_all("a", del("a/b"), "a(b b)");
    }

    #[test]
    fn insert_into_result_subtree_is_tree_conflict() {
        check_all("a/b", ins("a/b", "z"), "a(b)");
        check_all("a/b", ins("a//c", "z"), "a(b(c))");
        check_all("a/b", ins("a/d", "z"), "a(b d)");
    }

    #[test]
    fn branching_reads_with_augmented_predicates() {
        // Insert satisfies a [] predicate without changing the output set
        // membership — the read gains a match through the copy.
        check_all("a/b[c]/d", ins("a/b", "c"), "a(b(d))");
        check_all("a/b[c]", ins("a/b", "c"), "a(b(d) b(c))");
        check_all("a/*[c]", ins("a/b", "c(e)"), "a(b(d))");
    }

    #[test]
    fn output_mapping_into_copy_is_detected() {
        // The read's output can map inside the inserted copy itself.
        check_all("a//z", ins("a/b", "y(z)"), "a(b)");
        check_all("a/b/z", ins("a/b", "z"), "a(b)");
        check_all("a//z", ins("a//c", "w(z(q))"), "a(b(c(d)))");
    }

    #[test]
    fn noop_update_never_conflicts() {
        check_all("a//b", ins("a/nope", "b"), "a(b)");
        check_all("a//b", del("a/nope"), "a(b)");
    }
}
