//! Index-backed pattern evaluation.
//!
//! Two strategies, chosen per pattern:
//!
//! * **Chain** (`index.eval.chain`): linear patterns (`P^{//,*}`) compile
//!   to the PR-4 bitset [`Chain`] once and run against root-to-node label
//!   paths reconstructed from the flat parent array. Candidates come from
//!   the postings list of the output label, so cost is
//!   `O(|postings| · depth)` independent of document size.
//! * **Postings table** (`index.eval.postings`): branching patterns run
//!   the same two-pass bottom-up-candidates / top-down-feasibility
//!   algorithm as `cxu_pattern::eval`, but over bitset rows seeded from
//!   postings lists and joined through the parent/span arrays instead of
//!   recursive tree walks.
//!
//! The table path additionally supports two *virtual document* variants
//! used by grounded conflict checks ([`crate::grounded`]):
//!
//! * a **mask** of deleted spans — evaluation over `t` with the spans
//!   masked equals evaluation over `DELETE(t)`, because deleted spans are
//!   descendant-closed and pattern matching is monotone;
//! * an **augment** describing an insertion (`points` + where each
//!   subpattern embeds inside the inserted tree `X`) — a child/descendant
//!   constraint may also be satisfied *through* a grafted copy of `X`,
//!   which the candidate pass admits without materializing the copies.

use crate::doc::DocIndex;
use cxu_pattern::{Axis, Pattern};
use cxu_tree::Tree;

/// A dense bitset over preorder positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Bits {
    w: Vec<u64>,
}

impl Bits {
    pub(crate) fn new(n: usize) -> Bits {
        Bits {
            w: vec![0; n.div_ceil(64)],
        }
    }

    pub(crate) fn clear(&mut self) {
        self.w.iter_mut().for_each(|x| *x = 0);
    }

    pub(crate) fn set(&mut self, i: u32) {
        self.w[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    pub(crate) fn get(&self, i: u32) -> bool {
        self.w[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    pub(crate) fn and(&mut self, o: &Bits) {
        for (a, b) in self.w.iter_mut().zip(&o.w) {
            *a &= b;
        }
    }

    pub(crate) fn set_all(&mut self, n: usize) {
        for (i, w) in self.w.iter_mut().enumerate() {
            let lo = i * 64;
            *w = if lo + 64 <= n {
                u64::MAX
            } else if lo >= n {
                0
            } else {
                (1u64 << (n - lo)) - 1
            };
        }
    }

    /// Iterates set positions in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.w.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros();
                w &= w - 1;
                Some(i as u32 * 64 + b)
            })
        })
    }

    pub(crate) fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

/// Insertion-awareness for the table evaluator: the sorted insertion
/// `points` plus, per pattern node `n`, whether `n`'s subpattern embeds
/// at the root of the inserted tree `X` (`x_root`) or anywhere in `X`
/// (`x_any`). Built by [`build_augment`].
pub(crate) struct Augment {
    pub(crate) points: Vec<u32>,
    pub(crate) x_root: Vec<bool>,
    pub(crate) x_any: Vec<bool>,
}

/// Evaluates `p` over the indexed document; returns sorted preorder
/// positions of the output images. Dispatches to the chain path for
/// linear patterns, the postings table otherwise.
pub fn eval(p: &Pattern, idx: &DocIndex) -> Vec<u32> {
    if p.is_linear() {
        cxu_obs::counter!("index.eval.chain").inc();
        eval_chain(p, idx)
    } else {
        cxu_obs::counter!("index.eval.postings").inc();
        eval_tables(p, idx, &[], None).result
    }
}

/// Linear-pattern fast path: compiled [`Chain`] against root-to-candidate
/// label paths from the parent array.
fn eval_chain(p: &Pattern, idx: &DocIndex) -> Vec<u32> {
    let chain = cxu_core::matching::compile(p);
    let n = idx.len() as u32;
    let mut word: Vec<u32> = Vec::new();
    let mut out = Vec::new();
    let mut check = |u: u32| {
        let d = idx.depth(u) as usize;
        word.resize(d + 1, 0);
        let mut a = u;
        for i in (0..=d).rev() {
            word[i] = idx.label(a);
            a = idx.parent(a).unwrap_or(a);
        }
        if chain.accepts(&word) {
            out.push(u);
        }
    };
    match p.label(p.output()) {
        // Candidates must carry the output label: walk its postings.
        Some(s) => {
            for &u in idx.postings(s.index()) {
                check(u);
            }
        }
        // Wildcard output: every node is a candidate.
        None => {
            for u in 0..n {
                check(u);
            }
        }
    }
    out
}

/// Full output of the table evaluator: candidate and feasibility rows per
/// pattern node (indexed by `PNodeId::index()`), plus the sorted output
/// positions. Grounded insert checks inspect the feasibility rows.
pub(crate) struct Tables {
    pub(crate) feas: Vec<Bits>,
    pub(crate) result: Vec<u32>,
}

/// Evaluates `p` with the spans in `masked` removed (sorted, disjoint,
/// exclusive-end). Counts against `index.eval.postings`.
pub(crate) fn eval_masked(p: &Pattern, idx: &DocIndex, masked: &[(u32, u32)]) -> Vec<u32> {
    cxu_obs::counter!("index.eval.postings").inc();
    eval_tables(p, idx, masked, None).result
}

/// Is `u` inside one of the sorted disjoint spans?
pub(crate) fn in_spans(spans: &[(u32, u32)], u: u32) -> bool {
    let i = spans.partition_point(|&(s, _)| s <= u);
    i > 0 && u < spans[i - 1].1
}

/// The two-pass table evaluation. `masked` removes spans (delete
/// grounding); `aug` admits constraint satisfaction through inserted
/// copies (insert grounding). The two are never combined.
pub(crate) fn eval_tables(
    p: &Pattern,
    idx: &DocIndex,
    masked: &[(u32, u32)],
    aug: Option<&Augment>,
) -> Tables {
    let n = idx.len();
    let nu = n as u32;
    let mut cand: Vec<Bits> = vec![Bits::new(0); p.len()];
    let mut tmp = Bits::new(n);

    // Pass 1 (bottom-up): cand[n][u] — the subpattern rooted at n embeds
    // with n ↦ u. Label screens come from postings; child/descendant
    // constraints propagate through the parent array. With `aug`, a
    // constraint is also satisfied if the required child subpattern embeds
    // inside a copy of X grafted at an insertion point below u.
    for &pn in &p.postorder() {
        let mut row = Bits::new(n);
        match p.label(pn) {
            Some(s) => {
                for &u in idx.postings(s.index()) {
                    if !in_spans(masked, u) {
                        row.set(u);
                    }
                }
            }
            None => {
                row.set_all(n);
                for &(s, e) in masked {
                    for u in s..e {
                        row.w[(u / 64) as usize] &= !(1u64 << (u % 64));
                    }
                }
            }
        }
        for &c in p.children(pn) {
            tmp.clear();
            match p.axis(c).expect("non-root pattern node has an axis") {
                Axis::Child => {
                    for u in cand[c.index()].iter() {
                        if let Some(par) = idx.parent(u) {
                            tmp.set(par);
                        }
                    }
                    if let Some(a) = aug {
                        if a.x_root[c.index()] {
                            // c can map to the root of a copy grafted at
                            // any insertion point q, making q its parent.
                            for &q in &a.points {
                                tmp.set(q);
                            }
                        }
                    }
                }
                Axis::Descendant => {
                    for u in cand[c.index()].iter() {
                        mark_proper_ancestors(&mut tmp, idx, u);
                    }
                    if let Some(a) = aug {
                        if a.x_any[c.index()] {
                            // c can map anywhere inside a copy grafted at
                            // q: every ancestor-or-self of q qualifies.
                            for &q in &a.points {
                                if !tmp.get(q) {
                                    tmp.set(q);
                                    mark_proper_ancestors(&mut tmp, idx, q);
                                }
                            }
                        }
                    }
                }
            }
            row.and(&tmp);
        }
        cand[pn.index()] = row;
    }

    // Pass 2 (top-down): feas[n][u] — some full embedding maps n ↦ u.
    let mut feas: Vec<Bits> = vec![Bits::new(n); p.len()];
    let root_ok = cand[p.root().index()].get(0);
    if root_ok {
        feas[p.root().index()].set(0);
        let mut pre = p.postorder();
        pre.reverse();
        for &pn in &pre {
            let Some((par, axis)) = p.parent(pn) else {
                continue;
            };
            let mut row = Bits::new(n);
            match axis {
                Axis::Child => {
                    for u in cand[pn.index()].iter() {
                        if let Some(pu) = idx.parent(u) {
                            if feas[par.index()].get(pu) {
                                row.set(u);
                            }
                        }
                    }
                }
                Axis::Descendant => {
                    // anc[u]: some proper ancestor of u is feasible for
                    // `par`. One ascending pass over the parent array.
                    tmp.clear();
                    for u in 1..nu {
                        let pu = idx.parent(u).expect("non-root has a parent");
                        if feas[par.index()].get(pu) || tmp.get(pu) {
                            tmp.set(u);
                        }
                    }
                    row = cand[pn.index()].clone();
                    row.and(&tmp);
                }
            }
            feas[pn.index()] = row;
        }
    }

    let result = feas[p.output().index()].to_vec();
    Tables { feas, result }
}

/// Marks every proper ancestor of `u`, stopping early at the first
/// already-marked node (both call sites always mark full chains to the
/// root, so a marked node implies its ancestors are marked).
fn mark_proper_ancestors(bits: &mut Bits, idx: &DocIndex, u: u32) {
    let mut a = idx.parent(u);
    while let Some(p) = a {
        if bits.get(p) {
            break;
        }
        bits.set(p);
        a = idx.parent(p);
    }
}

/// Builds the insert [`Augment`]: evaluates each subpattern of `p` over
/// the (small) inserted tree `X` bottom-up, recording per pattern node
/// whether it embeds at `X`'s root and whether it embeds anywhere in `X`.
pub(crate) fn build_augment(p: &Pattern, x: &Tree, points: Vec<u32>) -> Augment {
    let live: Vec<_> = x.nodes().collect();
    let slots = x.slot_count();
    let mut rows: Vec<Vec<bool>> = vec![Vec::new(); p.len()];
    let mut x_root = vec![false; p.len()];
    let mut x_any = vec![false; p.len()];
    for &pn in &p.postorder() {
        let mut row = vec![false; slots];
        match p.label(pn) {
            Some(req) => {
                for &u in &live {
                    row[u.index()] = x.label(u) == req;
                }
            }
            None => {
                for &u in &live {
                    row[u.index()] = true;
                }
            }
        }
        for &c in p.children(pn) {
            match p.axis(c).expect("non-root pattern node has an axis") {
                Axis::Child => {
                    let mut ok = vec![false; slots];
                    for &u in &live {
                        if rows[c.index()][u.index()] {
                            if let Some(par) = x.parent(u) {
                                ok[par.index()] = true;
                            }
                        }
                    }
                    for &u in &live {
                        row[u.index()] &= ok[u.index()];
                    }
                }
                Axis::Descendant => {
                    // has_desc via reverse preorder (children first).
                    let mut hd = vec![false; slots];
                    for &u in live.iter().rev() {
                        let any = x
                            .children(u)
                            .iter()
                            .any(|&v| rows[c.index()][v.index()] || hd[v.index()]);
                        hd[u.index()] = any;
                    }
                    for &u in &live {
                        row[u.index()] &= hd[u.index()];
                    }
                }
            }
        }
        x_root[pn.index()] = row[x.root().index()];
        x_any[pn.index()] = row.iter().any(|&b| b);
        rows[pn.index()] = row;
    }
    Augment {
        points,
        x_root,
        x_any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_pattern::xpath;
    use cxu_tree::text;

    #[test]
    fn index_eval_agrees_with_tree_eval_on_small_cases() {
        for (pat, doc) in [
            ("a/b", "a(b b c)"),
            ("a//c", "a(b(c) c d(e(c)))"),
            ("a//*", "a(b(c) d)"),
            ("a[b]/c", "a(b c)"),
            ("a[b/d]//e", "a(b(d) c(e) e)"),
            ("x//C", "x(B)"),
            ("*//b", "a(c(b) b)"),
        ] {
            let p = xpath::parse(pat).unwrap();
            let t = text::parse(doc).unwrap();
            let idx = DocIndex::from_tree(&t);
            let via_index: Vec<_> = eval(&p, &idx)
                .into_iter()
                .map(|u| idx.node_at(u).unwrap())
                .collect();
            let via_tree = cxu_pattern::eval::eval(&p, &t);
            assert_eq!(via_index, via_tree, "pattern {pat} over {doc}");
        }
    }

    #[test]
    fn chain_and_table_paths_agree_on_linear_patterns() {
        let doc = "a(b(c(d) c) b(c) e(b(c(d))))";
        let t = text::parse(doc).unwrap();
        let idx = DocIndex::from_tree(&t);
        for pat in ["a//c", "a/b/c", "a//b/c/d", "*//c", "a//*"] {
            let p = xpath::parse(pat).unwrap();
            assert!(p.is_linear());
            let chain = eval_chain(&p, &idx);
            let table = eval_tables(&p, &idx, &[], None).result;
            assert_eq!(chain, table, "pattern {pat}");
        }
    }

    #[test]
    fn masked_eval_hides_deleted_spans() {
        // Doc: a(b(c) b(c)) — positions a=0 b=1 c=2 b=3 c=4.
        let t = text::parse("a(b(c) b(c))").unwrap();
        let idx = DocIndex::from_tree(&t);
        let p = xpath::parse("a//c").unwrap();
        assert_eq!(eval_masked(&p, &idx, &[]), vec![2, 4]);
        assert_eq!(eval_masked(&p, &idx, &[(1, 3)]), vec![4]);
        assert_eq!(eval_masked(&p, &idx, &[(1, 3), (3, 5)]), Vec::<u32>::new());
    }

    #[test]
    fn augmented_eval_sees_insertions() {
        // Doc: x(B); insert C under B (point = position 1).
        let t = text::parse("x(B)").unwrap();
        let idx = DocIndex::from_tree(&t);
        let read = xpath::parse("x//C").unwrap();
        let x = text::parse("C").unwrap();
        let aug = build_augment(&read, &x, vec![1]);
        // Base eval finds nothing; the augmented candidate pass must admit
        // x's root because C embeds in the inserted copy below point 1.
        assert!(eval(&read, &idx).is_empty());
        let tables = eval_tables(&read, &idx, &[], Some(&aug));
        assert!(tables.feas[read.root().index()].get(0));
    }

    #[test]
    fn bits_iter_and_set_all() {
        let mut b = Bits::new(130);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert_eq!(b.to_vec(), vec![0, 63, 64, 129]);
        let mut a = Bits::new(70);
        a.set_all(70);
        assert_eq!(a.to_vec(), (0..70).collect::<Vec<_>>());
    }
}
