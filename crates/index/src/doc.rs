//! The structural index: flat preorder arrays over one document.
//!
//! A [`DocIndex`] stores, per preorder position `u` (a `u32`):
//!
//! * `labels[u]` — the interned label id ([`Symbol::index`]);
//! * `parent[u]` — the preorder position of `u`'s parent ([`NO_PARENT`]
//!   for the root);
//! * `depth[u]` — root has depth 0;
//! * `end[u]` — the *exclusive* end of `u`'s subtree span: the subtree of
//!   `u` is exactly the preorder interval `[u, end[u])`, so
//!   ancestor-or-self is two integer compares
//!   (`a <= b && b < end[a]`);
//! * `codes[u]` — an order-invariant structural hash of the subtree at
//!   `u` (an AHU-style code over sorted child codes), used by
//!   value-semantics grounded checks;
//!
//! plus `postings`: interned label id → sorted list of positions, the
//! entry point for index-backed pattern evaluation.
//!
//! Two builders share one incremental core: [`DocIndex::from_tree`] walks
//! a parsed [`Tree`] with an explicit stack, and [`DocIndex::from_xml`]
//! drives the streaming [`XmlReader`] directly — the index is built from
//! events without ever materializing a `Tree`, so ingestion is bounded by
//! document *depth* (the open-element stack), not document size.

use cxu_tree::xml::{XmlError, XmlEvent, XmlReader};
use cxu_tree::{NodeId, Symbol, Tree};
use std::collections::HashMap;
use std::time::Instant;

/// Sentinel parent position for the root.
pub const NO_PARENT: u32 = u32::MAX;

/// A flat structural index over one document. See the module docs for the
/// array layout.
#[derive(Clone, Debug)]
pub struct DocIndex {
    labels: Vec<u32>,
    parent: Vec<u32>,
    depth: Vec<u32>,
    end: Vec<u32>,
    codes: Vec<u64>,
    postings: HashMap<u32, Vec<u32>>,
    /// Preorder position → `NodeId` in the source tree. Populated by
    /// `from_tree` (empty for `from_xml`, where no tree exists).
    node_ids: Vec<NodeId>,
}

impl DocIndex {
    /// Indexes a parsed tree (preorder over live nodes, explicit stack).
    pub fn from_tree(t: &Tree) -> DocIndex {
        let t0 = Instant::now();
        let mut b = Builder::with_capacity(t.live_count());
        enum Item {
            Enter(NodeId),
            Exit,
        }
        let mut stack = vec![Item::Enter(t.root())];
        while let Some(item) = stack.pop() {
            match item {
                Item::Enter(n) => {
                    b.open(t.label(n).index());
                    b.node_ids.push(n);
                    stack.push(Item::Exit);
                    for &c in t.children(n).iter().rev() {
                        stack.push(Item::Enter(c));
                    }
                }
                Item::Exit => b.close(),
            }
        }
        let idx = b.finish();
        cxu_obs::histogram!("index.build_ns").record_since(t0);
        idx
    }

    /// Indexes an XML document by streaming [`XmlReader`] events straight
    /// into the builder — no `Tree` is materialized. Attribute and text
    /// events become leaf entries labeled exactly as
    /// [`cxu_tree::xml::parse_stream`] labels them (`@name=value`,
    /// `#text=...`), so `from_xml(src)` and
    /// `from_tree(&parse_stream(src)?)` index identical structures.
    pub fn from_xml(src: &str) -> Result<DocIndex, XmlError> {
        let t0 = Instant::now();
        let mut b = Builder::with_capacity(64);
        let mut rd = XmlReader::new(src);
        while let Some(ev) = rd.next_event()? {
            match ev {
                XmlEvent::Open(name) => {
                    b.open(Symbol::intern(name).index());
                }
                XmlEvent::Attr { name, value } => {
                    b.leaf(Symbol::intern(&format!("@{name}={value}")).index());
                }
                XmlEvent::Text(text) => {
                    b.leaf(Symbol::intern(&format!("#text={text}")).index());
                }
                XmlEvent::Close => b.close(),
            }
        }
        let idx = b.finish();
        cxu_obs::counter!("index.ingest_bytes").add(src.len() as u64);
        cxu_obs::histogram!("index.build_ns").record_since(t0);
        Ok(idx)
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the index holds no nodes (never the case for a built
    /// index — documents have a root — but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Interned label id at position `u`.
    pub fn label(&self, u: u32) -> u32 {
        self.labels[u as usize]
    }

    /// Parent position of `u`, `None` for the root.
    pub fn parent(&self, u: u32) -> Option<u32> {
        match self.parent[u as usize] {
            NO_PARENT => None,
            p => Some(p),
        }
    }

    /// Depth of `u` (root is 0).
    pub fn depth(&self, u: u32) -> u32 {
        self.depth[u as usize]
    }

    /// Exclusive end of `u`'s subtree span: the subtree is `[u, end(u))`.
    pub fn end(&self, u: u32) -> u32 {
        self.end[u as usize]
    }

    /// Is `a` equal to `b` or an ancestor of `b`? Two integer compares.
    pub fn is_ancestor_or_eq(&self, a: u32, b: u32) -> bool {
        a <= b && b < self.end[a as usize]
    }

    /// Structural hash of the subtree at `u` (order-invariant: equal
    /// unordered subtrees hash equal).
    pub fn code(&self, u: u32) -> u64 {
        self.codes[u as usize]
    }

    /// Sorted positions of nodes labeled with interned id `sym` (empty if
    /// the label does not occur).
    pub fn postings(&self, sym: u32) -> &[u32] {
        self.postings.get(&sym).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct labels with a posting list.
    pub fn postings_len(&self) -> usize {
        self.postings.len()
    }

    /// The `NodeId` in the source tree at preorder position `u`; `None`
    /// when the index was built by `from_xml` (no tree exists).
    pub fn node_at(&self, u: u32) -> Option<NodeId> {
        self.node_ids.get(u as usize).copied()
    }

    /// Preorder position of tree node `n`, if this index was built with
    /// `from_tree`. Linear scan — intended for tests and diagnostics.
    pub fn pos_of(&self, n: NodeId) -> Option<u32> {
        self.node_ids.iter().position(|&m| m == n).map(|i| i as u32)
    }

    /// Approximate resident size of the flat arrays and postings, in
    /// bytes. Feeds the `index.bytes` counter.
    pub fn approx_bytes(&self) -> usize {
        let n = self.len();
        // labels + parent + depth + end (u32 each) + codes (u64)
        let arrays = n * (4 * 4 + 8);
        let ids = self.node_ids.len() * 4;
        let postings: usize = self.postings.values().map(|v| 4 + v.len() * 4).sum();
        arrays + ids + postings
    }
}

/// Incremental builder shared by the tree walk and the event stream: call
/// `open` on element start (and `leaf` for attribute/text leaves), `close`
/// on element end; `finish` derives postings and structural codes.
struct Builder {
    labels: Vec<u32>,
    parent: Vec<u32>,
    depth: Vec<u32>,
    end: Vec<u32>,
    node_ids: Vec<NodeId>,
    open: Vec<u32>,
}

impl Builder {
    fn with_capacity(n: usize) -> Builder {
        Builder {
            labels: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
            depth: Vec::with_capacity(n),
            end: vec![],
            node_ids: Vec::new(),
            open: Vec::new(),
        }
    }

    fn open(&mut self, label_id: u32) -> u32 {
        let pos = u32::try_from(self.labels.len()).expect("document index overflow (> u32 nodes)");
        self.labels.push(label_id);
        self.parent
            .push(self.open.last().copied().unwrap_or(NO_PARENT));
        self.depth.push(self.open.len() as u32);
        self.open.push(pos);
        pos
    }

    fn leaf(&mut self, label_id: u32) {
        self.open(label_id);
        self.close();
    }

    fn close(&mut self) {
        let pos = self.open.pop().expect("close without open");
        // `end` is grown lazily: positions close in arbitrary order, so
        // size it once the position is known.
        if self.end.len() <= pos as usize {
            self.end.resize(self.labels.len(), 0);
        }
        self.end[pos as usize] = self.labels.len() as u32;
    }

    fn finish(mut self) -> DocIndex {
        assert!(
            self.open.is_empty(),
            "unbalanced open/close in index builder"
        );
        let n = self.labels.len();
        self.end.resize(n, 0);

        // Postings: one pass in preorder keeps each list sorted.
        let mut postings: HashMap<u32, Vec<u32>> = HashMap::new();
        for (pos, &l) in self.labels.iter().enumerate() {
            postings.entry(l).or_default().push(pos as u32);
        }

        // Structural codes, children-first: descending preorder position
        // visits every child before its parent; children of `u` are
        // enumerated with the first-child/next-sibling span chain
        // (`c = u+1; c = end[c]`).
        let mut codes = vec![0u64; n];
        let mut kids: Vec<u64> = Vec::new();
        for u in (0..n).rev() {
            kids.clear();
            let mut c = u + 1;
            let e = self.end[u] as usize;
            while c < e {
                kids.push(codes[c]);
                c = self.end[c] as usize;
            }
            kids.sort_unstable();
            codes[u] = ahu_hash(self.labels[u], &kids);
        }

        let idx = DocIndex {
            labels: self.labels,
            parent: self.parent,
            depth: self.depth,
            end: self.end,
            codes,
            postings,
            node_ids: self.node_ids,
        };
        cxu_obs::counter!("index.builds").inc();
        cxu_obs::counter!("index.nodes").add(n as u64);
        cxu_obs::counter!("index.postings").add(idx.postings.len() as u64);
        cxu_obs::counter!("index.bytes").add(idx.approx_bytes() as u64);
        idx
    }
}

/// AHU-style structural hash: a function of the node label and the
/// *sorted* child codes, so equal unordered subtrees hash equal. Uses the
/// splitmix64 finalizer for mixing; collisions are possible in principle
/// but 64-bit-rare, and the grounded value check only compares code sets
/// derived from the same document family.
pub(crate) fn ahu_hash(label: u32, sorted_kids: &[u64]) -> u64 {
    let mut h = mix(0x9E37_79B9_7F4A_7C15 ^ (label as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    for &k in sorted_kids {
        h = mix(h.wrapping_add(0xA076_1D64_78BD_642F) ^ k);
    }
    h ^ (sorted_kids.len() as u64).wrapping_mul(0x8BB8_4B93_962E_ACC9)
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_tree::text;

    #[test]
    fn spans_and_parents_match_the_tree() {
        let t = text::parse("a(b(d e) c)").unwrap();
        let idx = DocIndex::from_tree(&t);
        assert_eq!(idx.len(), 5);
        // Preorder: a b d e c
        let id = |s: &str| cxu_tree::Symbol::intern(s).index();
        assert_eq!(idx.label(0), id("a"));
        assert_eq!(idx.label(1), id("b"));
        assert_eq!(idx.label(2), id("d"));
        assert_eq!(idx.label(3), id("e"));
        assert_eq!(idx.label(4), id("c"));
        assert_eq!(idx.end(0), 5);
        assert_eq!(idx.end(1), 4);
        assert_eq!(idx.end(2), 3);
        assert_eq!(idx.parent(0), None);
        assert_eq!(idx.parent(1), Some(0));
        assert_eq!(idx.parent(2), Some(1));
        assert_eq!(idx.parent(4), Some(0));
        assert_eq!(idx.depth(0), 0);
        assert_eq!(idx.depth(2), 2);
        assert!(idx.is_ancestor_or_eq(0, 4));
        assert!(idx.is_ancestor_or_eq(1, 3));
        assert!(!idx.is_ancestor_or_eq(1, 4));
        assert!(!idx.is_ancestor_or_eq(2, 3));
    }

    #[test]
    fn postings_are_sorted_per_label() {
        let t = text::parse("a(b(a) b a)").unwrap();
        let idx = DocIndex::from_tree(&t);
        let a = cxu_tree::Symbol::intern("a").index();
        let b = cxu_tree::Symbol::intern("b").index();
        assert_eq!(idx.postings(a), &[0, 2, 4]);
        assert_eq!(idx.postings(b), &[1, 3]);
        assert_eq!(
            idx.postings(cxu_tree::Symbol::intern("zzz-absent").index()),
            &[] as &[u32]
        );
    }

    #[test]
    fn codes_are_order_invariant_and_structure_sensitive() {
        let t1 = text::parse("a(b c)").unwrap();
        let t2 = text::parse("a(c b)").unwrap();
        let t3 = text::parse("a(b b)").unwrap();
        let c1 = DocIndex::from_tree(&t1).code(0);
        let c2 = DocIndex::from_tree(&t2).code(0);
        let c3 = DocIndex::from_tree(&t3).code(0);
        assert_eq!(c1, c2, "sibling order must not matter");
        assert_ne!(c1, c3, "different child multisets must differ");
        // Nesting matters: a(b(c)) vs a(b c).
        let t4 = text::parse("a(b(c))").unwrap();
        assert_ne!(DocIndex::from_tree(&t4).code(0), c1);
    }

    #[test]
    fn from_xml_matches_from_tree_of_parse_stream() {
        let src = r#"<inv note="x"><item>widget</item><item count="2"/></inv>"#;
        let t = cxu_tree::xml::parse_stream(src).unwrap();
        let a = DocIndex::from_xml(src).unwrap();
        let b = DocIndex::from_tree(&t);
        assert_eq!(a.len(), b.len());
        for u in 0..a.len() as u32 {
            assert_eq!(a.label(u), b.label(u), "label at {u}");
            assert_eq!(a.parent(u), b.parent(u), "parent at {u}");
            assert_eq!(a.end(u), b.end(u), "end at {u}");
            assert_eq!(a.depth(u), b.depth(u), "depth at {u}");
            assert_eq!(a.code(u), b.code(u), "code at {u}");
        }
    }
}
