//! # cxu-index — structural document index + grounded conflict checks
//!
//! The document-free detectors (`cxu-core`, `cxu-sched`) answer *"can
//! these operations conflict on **some** tree?"*. This crate answers the
//! grounded question — *"do they conflict on **this** document?"* (Lemma
//! 1) — at document sizes where cloning and re-walking trees is too slow.
//!
//! Three layers:
//!
//! * [`DocIndex`] — flat preorder arrays (labels, parent, depth, subtree
//!   spans, structural codes) plus label → position postings. Built from
//!   a parsed [`cxu_tree::Tree`] or streamed straight from XML events
//!   ([`DocIndex::from_xml`]) without materializing a tree.
//! * [`eval::eval`] — index-backed pattern evaluation: linear patterns
//!   run as compiled bitset chains over root-to-node label paths;
//!   branching patterns evaluate bottom-up over postings and span joins.
//! * [`detect_grounded`] — the witness check decided against the index:
//!   deletes mask spans, inserts augment constraint edges with
//!   embeddings into the inserted tree; only insert+value falls back to
//!   the tree walk.
//!
//! Metrics: `index.{builds, nodes, postings, bytes, ingest_bytes}`
//! counters and the `index.build_ns` histogram from the builder;
//! `index.eval.{chain, postings, fallback}` strategy counters;
//! `index.grounded_checks` / `index.grounded_ns` per grounded check.

pub mod doc;
pub mod eval;
pub mod grounded;

pub use doc::{DocIndex, NO_PARENT};
pub use grounded::detect_grounded;
