//! Robustness: tree parsers never panic on arbitrary input.

// Gated: needs the external `proptest` crate (see the workspace
// Cargo.toml note on hermetic builds).
#![cfg(feature = "proptest")]

use cxu_tree::{text, xml};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn text_parse_total(s in "\\PC*") {
        let _ = text::parse(&s);
    }

    #[test]
    fn text_parse_grammar_soup(s in "[a-c() ,]{0,40}") {
        if let Ok(t) = text::parse(&s) {
            // Well-formed: re-render and re-parse to an isomorphic tree.
            let rendered = text::to_text(&t);
            let back = text::parse(&rendered).expect("canonical form parses");
            prop_assert!(cxu_tree::iso::isomorphic(&t, &back));
        }
    }

    #[test]
    fn xml_parse_total(s in "\\PC*") {
        let _ = xml::parse(&s);
    }

    #[test]
    fn xml_parse_tag_soup(s in "[<>a-b/= \"]{0,40}") {
        if let Ok(t) = xml::parse(&s) {
            let rendered = xml::to_xml(&t);
            let back = xml::parse(&rendered).expect("serialized form parses");
            prop_assert!(cxu_tree::iso::isomorphic(&t, &back));
        }
    }

    #[test]
    fn error_positions_in_bounds(s in "[<>a-b/=() ]{0,30}") {
        if let Err(e) = xml::parse(&s) {
            prop_assert!(e.at <= s.len());
        }
        if let Err(e) = text::parse(&s) {
            prop_assert!(e.at <= s.len());
        }
    }
}
