//! Property tests for the tree substrate.

// Gated: needs the external `proptest` crate (see the workspace
// Cargo.toml note on hermetic builds).
#![cfg(feature = "proptest")]

use cxu_tree::enumerate::enumerate_trees;
use cxu_tree::iso::{isomorphic, Canonizer};
use cxu_tree::{text, NodeId, Symbol, Tree};
use proptest::prelude::*;

/// A random tree strategy built structurally (no generator crate here —
/// cxu-tree sits below cxu-gen).
fn arb_tree() -> impl Strategy<Value = Tree> {
    // Encode a tree as (labels, parent choices).
    (1usize..24).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..3, n),
            proptest::collection::vec(proptest::num::u32::ANY, n.saturating_sub(1)),
        )
            .prop_map(move |(labels, parents)| {
                let lbl = |i: usize| Symbol::intern(&format!("p{}", labels[i % labels.len()]));
                let mut t = Tree::new(lbl(0));
                let mut ids: Vec<NodeId> = vec![t.root()];
                for (i, &p) in parents.iter().enumerate() {
                    let parent = ids[(p as usize) % ids.len()];
                    ids.push(t.build_child(parent, lbl(i + 1)));
                }
                t
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Term-syntax round trip preserves the tree up to isomorphism.
    #[test]
    fn text_roundtrip(t in arb_tree()) {
        let rendered = text::to_text(&t);
        let back = text::parse(&rendered).unwrap();
        prop_assert!(isomorphic(&t, &back), "{rendered}");
        // Canonical form is idempotent.
        prop_assert_eq!(text::to_text(&back), rendered);
    }

    /// XML round trip preserves the tree up to isomorphism (labels here
    /// are XML-name-safe by construction).
    #[test]
    fn xml_roundtrip(t in arb_tree()) {
        let xml = cxu_tree::xml::to_xml(&t);
        let back = cxu_tree::xml::parse(&xml).unwrap();
        prop_assert!(isomorphic(&t, &back), "{xml}");
    }

    /// Deleting a non-root subtree then counting agrees with the size of
    /// the removed region; ids never come back.
    #[test]
    fn delete_accounting(t in arb_tree(), pick in proptest::num::u32::ANY) {
        let nodes: Vec<NodeId> = t.nodes().collect();
        let victim = nodes[(pick as usize) % nodes.len()];
        if victim == t.root() { return Ok(()); }
        let region = t.descendants_or_self(victim).count();
        let mut t2 = t.clone();
        t2.remove_subtree(victim).unwrap();
        prop_assert_eq!(t2.live_count(), t.live_count() - region);
        prop_assert!(!t2.is_alive(victim));
        // Adding new nodes never reuses the dead id.
        let root = t2.root();
        let fresh = t2.add_child(root, "fresh");
        prop_assert_ne!(fresh, victim);
    }

    /// Grafting increases size by the grafted tree's size; the graft is
    /// isomorphic to its source.
    #[test]
    fn graft_accounting(t in arb_tree(), sub in arb_tree(), pick in proptest::num::u32::ANY) {
        let nodes: Vec<NodeId> = t.nodes().collect();
        let at = nodes[(pick as usize) % nodes.len()];
        let mut t2 = t.clone();
        let new_root = t2.graft(at, &sub);
        prop_assert_eq!(t2.live_count(), t.live_count() + sub.live_count());
        let copy = t2.subtree_to_tree(new_root);
        prop_assert!(isomorphic(&copy, &sub));
    }

    /// Canonical codes identify isomorphism classes: code equality for a
    /// tree and its canonical-text rebuild; inequality after a label edit.
    #[test]
    fn canon_codes(t in arb_tree()) {
        let mut c = Canonizer::new();
        let rebuilt = text::parse(&text::to_text(&t)).unwrap();
        prop_assert_eq!(c.code_tree(&t), c.code_tree(&rebuilt));
        // Relabel the root with a label not used anywhere.
        let mut edited_src = String::from("totally-fresh-root");
        if t.children(t.root()).is_empty() {
            // a single node tree: trivially different label
        } else {
            let body = text::to_text(&t);
            let open = body.find('(').unwrap();
            edited_src.push_str(&body[open..]);
        }
        let edited = text::parse(&edited_src).unwrap();
        prop_assert_ne!(c.code_tree(&t), c.code_tree(&edited));
    }

    /// subtree_modified is monotone along ancestor chains.
    #[test]
    fn modification_monotone(t in arb_tree(), pick in proptest::num::u32::ANY) {
        let nodes: Vec<NodeId> = t.nodes().collect();
        let at = nodes[(pick as usize) % nodes.len()];
        let mut t2 = t.clone();
        t2.clear_mods();
        t2.graft(at, &Tree::new("m"));
        for n in t2.nodes() {
            if t2.subtree_modified(n) {
                if let Some(p) = t2.parent(n) {
                    prop_assert!(t2.subtree_modified(p), "parent not modified");
                }
            }
        }
        prop_assert!(t2.subtree_modified(t2.root()));
    }
}

/// Enumeration agrees with the closed-form count and contains no
/// isomorphic duplicates (deterministic, not proptest).
#[test]
fn enumeration_exactness() {
    use cxu_tree::enumerate::count_trees;
    let alpha: Vec<Symbol> = (0..2).map(|i| Symbol::intern(&format!("e{i}"))).collect();
    for n in 1..=4 {
        let trees = enumerate_trees(&alpha, n);
        assert_eq!(trees.len() as u128, count_trees(2, n), "n={n}");
        let mut canon = Canonizer::new();
        let mut codes: Vec<_> = trees.iter().map(|t| canon.code_tree(t)).collect();
        let before = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicates at n={n}");
    }
}
