//! # cxu-tree — unordered labeled trees
//!
//! The data substrate for the *Conflicting XML Updates* reproduction
//! (Raghavachari & Shmueli, 2005/2006). The paper models an XML document as
//! an **unordered, unranked tree** whose nodes carry labels drawn from an
//! infinite alphabet Σ (§2.1 of the paper). This crate provides:
//!
//! * [`Symbol`] — interned labels (the alphabet Σ),
//! * [`Tree`] / [`NodeId`] — an arena-backed tree with **stable node
//!   identity** across mutation, which is exactly what the paper's
//!   *reference-based* conflict semantics (Definition 2) compare,
//! * mutation primitives (`graft`, `remove_subtree`) that record
//!   *modification sites* so tree-conflict witnesses can be checked in
//!   linear time (Lemma 1),
//! * [`iso`] — Aho–Hopcroft–Ullman canonical forms for labeled-tree
//!   isomorphism (Definition 1), used by the *value-based* semantics,
//! * [`text`] — a compact `a(b c(d))` term syntax for tests and docs,
//! * [`xml`] — a minimal element-only XML reader/writer.
//!
//! ```
//! use cxu_tree::text;
//!
//! let t = text::parse("inventory(book(title quantity) book(title))").unwrap();
//! assert_eq!(t.live_count(), 6);
//! let books: Vec<_> = t
//!     .children(t.root())
//!     .iter()
//!     .filter(|&&c| t.label(c).as_str() == "book")
//!     .collect();
//! assert_eq!(books.len(), 2);
//! ```

pub mod enumerate;
pub mod iso;
mod symbol;
pub mod text;
mod tree;
pub mod xml;

pub use symbol::Symbol;
pub use tree::{ModSite, NodeId, Tree, TreeError};
