//! Arena-backed unordered labeled trees with stable node identity.
//!
//! The reference-based conflict semantics of the paper (Definition 2)
//! compare *node identities* across the execution of update operations:
//! `NODES_t = NODES_{t'}` and `EDGES_t = EDGES_{t'}`. To make that
//! comparison meaningful, a [`Tree`] never reuses a [`NodeId`]: deleting a
//! subtree tombstones its slots, and inserting allocates fresh slots. A
//! read evaluated before and after an update can therefore compare its two
//! result sets by id, exactly as `R(t) ≠ R(I(t))` requires.

use crate::Symbol;
use std::fmt;

/// Identity of a node within one [`Tree`] arena (and its clones).
///
/// Ids are stable: they survive arbitrary sequences of insertions and
/// deletions, and cloning a tree preserves them (the paper's update
/// semantics "construct a copy of t" whose original nodes are the same
/// nodes). Ids from unrelated trees must not be mixed; methods that take a
/// `NodeId` panic if the id is out of range and return well-defined errors
/// where detectable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Arena index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn new(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("tree arena overflow"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Slot {
    label: Symbol,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    alive: bool,
}

/// A place where a mutation changed the tree, recorded for Lemma 1's
/// linear-time *tree conflict* witness check.
///
/// * an insertion at insertion point `u` modifies the subtree of every
///   ancestor-or-self of `u`;
/// * a deletion of the subtree rooted at `u` modifies the subtree of every
///   ancestor-or-self of `parent(u)`.
///
/// Both cases are captured by storing the *site* — the surviving node whose
/// child list changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModSite {
    /// The surviving node whose set of children changed.
    pub site: NodeId,
}

/// Errors from structured tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Attempted to remove the root: the result would not be a tree. The
    /// paper forbids this by requiring `𝒪(p) ≠ ROOT(p)` for deletions.
    RemoveRoot,
    /// Operation on a node that has already been deleted.
    DeadNode(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::RemoveRoot => write!(f, "cannot remove the root of a tree"),
            TreeError::DeadNode(n) => write!(f, "node {n:?} has been deleted"),
        }
    }
}

impl std::error::Error for TreeError {}

/// An unordered, unranked labeled tree over interned symbols — the paper's
/// `t ∈ T_Σ`.
///
/// Children are stored in insertion order for determinism, but no API in
/// this workspace observes sibling order, matching the paper's unordered
/// model ("the XPath expressions considered in this paper cannot observe
/// order between siblings").
#[derive(Clone)]
pub struct Tree {
    slots: Vec<Slot>,
    root: NodeId,
    live: usize,
    mods: Vec<ModSite>,
}

impl Tree {
    /// A one-node tree whose root carries `label`.
    pub fn new(label: impl Into<Symbol>) -> Tree {
        Tree {
            slots: vec![Slot {
                label: label.into(),
                parent: None,
                children: Vec::new(),
                alive: true,
            }],
            root: NodeId(0),
            live: 1,
            mods: Vec::new(),
        }
    }

    /// The root node. Always alive.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of live nodes, `|t|` in the paper.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total number of slots ever allocated (live + tombstoned).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Is `n` still part of the tree?
    pub fn is_alive(&self, n: NodeId) -> bool {
        self.slots[n.index()].alive
    }

    /// Label of `n`. Valid for dead nodes too (labels are immutable).
    pub fn label(&self, n: NodeId) -> Symbol {
        self.slots[n.index()].label
    }

    /// Parent of `n`, `None` for the root.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.slots[n.index()].parent
    }

    /// Children of `n` (live nodes only, provided `n` is alive).
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.slots[n.index()].children
    }

    /// Appends a fresh node labeled `label` as a child of `parent`.
    ///
    /// This is the primitive behind tree construction; it **does** record a
    /// modification site (use [`Tree::build_child`] during initial
    /// construction if the journal should stay empty — see
    /// [`Tree::clear_mods`]).
    pub fn add_child(&mut self, parent: NodeId, label: impl Into<Symbol>) -> NodeId {
        assert!(self.is_alive(parent), "add_child on dead node");
        let id = NodeId::new(self.slots.len());
        self.slots.push(Slot {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            alive: true,
        });
        self.slots[parent.index()].children.push(id);
        self.live += 1;
        self.mods.push(ModSite { site: parent });
        id
    }

    /// [`Tree::add_child`] without recording a modification site. Intended
    /// for building the *initial* document before updates run.
    pub fn build_child(&mut self, parent: NodeId, label: impl Into<Symbol>) -> NodeId {
        let id = self.add_child(parent, label);
        self.mods.pop();
        id
    }

    /// Inserts a fresh, id-disjoint copy of `sub` as a child of `parent`,
    /// returning the id of the copy's root.
    ///
    /// This is exactly the paper's `INSERT` step for a single insertion
    /// point: "Let X_i ≅ X … the set of nodes of each X_i is disjoint from
    /// NODES_t … add X_i as a child of n_i."
    pub fn graft(&mut self, parent: NodeId, sub: &Tree) -> NodeId {
        assert!(self.is_alive(parent), "graft on dead node");
        let new_root = self.add_child(parent, sub.label(sub.root()));
        // Breadth-first copy keeps the borrow checker and the journal simple:
        // only the graft point is a modification site; interior copies are
        // new nodes whose own subtrees existed in no prior version.
        let mut stack = vec![(sub.root(), new_root)];
        while let Some((src, dst)) = stack.pop() {
            for &c in sub.children(src) {
                let copy = self.add_child(dst, sub.label(c));
                self.mods.pop(); // interior copy: not a separate site
                stack.push((c, copy));
            }
        }
        new_root
    }

    /// Removes the subtree rooted at `n` (the paper's `DELETE` step for a
    /// single deletion point). The nodes become tombstones; their ids are
    /// never reused.
    pub fn remove_subtree(&mut self, n: NodeId) -> Result<(), TreeError> {
        if !self.is_alive(n) {
            // Deleting an already-deleted node is a no-op: the paper's
            // DELETE removes *all* selected deletion points and a point may
            // be a descendant of another point.
            return Ok(());
        }
        let parent = self.parent(n).ok_or(TreeError::RemoveRoot)?;
        let kids = &mut self.slots[parent.index()].children;
        let pos = kids
            .iter()
            .position(|&c| c == n)
            .expect("child missing from parent list");
        kids.swap_remove(pos);
        // Tombstone the whole subtree.
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            let slot = &mut self.slots[x.index()];
            slot.alive = false;
            self.live -= 1;
            stack.extend(slot.children.iter().copied());
            slot.children.clear();
        }
        self.mods.push(ModSite { site: parent });
        Ok(())
    }

    /// The modification journal since construction or the last
    /// [`Tree::clear_mods`].
    pub fn mod_sites(&self) -> &[ModSite] {
        &self.mods
    }

    /// Forgets recorded modification sites. Call after initial document
    /// construction so that only *updates* count as modifications.
    pub fn clear_mods(&mut self) {
        self.mods.clear();
    }

    /// Has the subtree rooted at `v` been modified by any journaled
    /// mutation? (Lemma 1's per-node "modified" flag, computed on demand.)
    ///
    /// True iff some modification site lies at or below `v`.
    pub fn subtree_modified(&self, v: NodeId) -> bool {
        self.mods.iter().any(|m| self.is_ancestor_or_eq(v, m.site))
    }

    /// Is `a` an ancestor of `b` (strictly above it)?
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = self.parent(b);
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Is `a` equal to `b` or an ancestor of `b`?
    pub fn is_ancestor_or_eq(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.is_ancestor(a, b)
    }

    /// Number of edges on the path from the root to `n`.
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 0;
        let mut cur = self.parent(n);
        while let Some(p) = cur {
            d += 1;
            cur = self.parent(p);
        }
        d
    }

    /// Live nodes in preorder from the root.
    pub fn nodes(&self) -> Preorder<'_> {
        self.descendants_or_self(self.root)
    }

    /// `n` and all its live descendants, preorder.
    pub fn descendants_or_self(&self, n: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: if self.is_alive(n) { vec![n] } else { vec![] },
        }
    }

    /// All *proper* live descendants of `n`, preorder.
    pub fn descendants(&self, n: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: if self.is_alive(n) {
                self.children(n).to_vec()
            } else {
                vec![]
            },
        }
    }

    /// Ancestors of `n`, nearest first (excludes `n`).
    pub fn ancestors(&self, n: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: self.parent(n),
        }
    }

    /// Extracts `SUBTREE_n(t)` as an independent tree (fresh arena).
    pub fn subtree_to_tree(&self, n: NodeId) -> Tree {
        assert!(self.is_alive(n), "subtree_to_tree on dead node");
        let mut out = Tree::new(self.label(n));
        let mut stack = vec![(n, out.root())];
        while let Some((src, dst)) = stack.pop() {
            for &c in self.children(src) {
                let copy = out.build_child(dst, self.label(c));
                stack.push((c, copy));
            }
        }
        out
    }

    /// The distinct symbols labeling live nodes — the paper's `Σ_t`.
    pub fn alphabet(&self) -> Vec<Symbol> {
        let mut syms: Vec<Symbol> = self.nodes().map(|n| self.label(n)).collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// The maximum depth over live nodes (root has depth 0).
    pub fn height(&self) -> usize {
        self.nodes().map(|n| self.depth(n)).max().unwrap_or(0)
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tree({})", crate::text::to_text(self))
    }
}

/// Preorder traversal over live nodes. See [`Tree::nodes`].
pub struct Preorder<'t> {
    tree: &'t Tree,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        self.stack.extend(self.tree.children(n).iter().copied());
        Some(n)
    }
}

/// Ancestor chain iterator. See [`Tree::ancestors`].
pub struct Ancestors<'t> {
    tree: &'t Tree,
    cur: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.cur?;
        self.cur = self.tree.parent(n);
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Tree, NodeId, NodeId, NodeId) {
        // a(b(c))
        let mut t = Tree::new("a");
        let b = t.build_child(t.root(), "b");
        let c = t.build_child(b, "c");
        (t, NodeId(0), b, c)
    }

    #[test]
    fn construction_basics() {
        let (t, a, b, c) = abc();
        assert_eq!(t.live_count(), 3);
        assert_eq!(t.root(), a);
        assert_eq!(t.label(a).as_str(), "a");
        assert_eq!(t.parent(b), Some(a));
        assert_eq!(t.parent(a), None);
        assert_eq!(t.children(b), &[c]);
        assert!(t.mod_sites().is_empty(), "build_child must not journal");
    }

    #[test]
    fn node_ids_survive_deletion() {
        let (mut t, a, b, c) = abc();
        t.remove_subtree(b).unwrap();
        assert!(t.is_alive(a));
        assert!(!t.is_alive(b));
        assert!(!t.is_alive(c));
        assert_eq!(t.live_count(), 1);
        // Ids are never reused.
        let d = t.add_child(a, "d");
        assert_ne!(d, b);
        assert_ne!(d, c);
    }

    #[test]
    fn remove_root_is_an_error() {
        let (mut t, a, _, _) = abc();
        assert_eq!(t.remove_subtree(a), Err(TreeError::RemoveRoot));
    }

    #[test]
    fn double_delete_is_noop() {
        let (mut t, _, b, c) = abc();
        t.remove_subtree(c).unwrap();
        assert_eq!(t.live_count(), 2);
        // c is inside the already-deleted region after removing b.
        t.remove_subtree(b).unwrap();
        t.remove_subtree(c).unwrap();
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn graft_copies_with_fresh_ids() {
        let (mut t, a, _, _) = abc();
        let x = crate::text::parse("x(y z)").unwrap();
        let before = t.slot_count();
        let gr = t.graft(a, &x);
        assert_eq!(t.live_count(), 6);
        assert_eq!(t.label(gr).as_str(), "x");
        assert_eq!(t.children(gr).len(), 2);
        assert!(gr.index() >= before, "grafted nodes use fresh slots");
        // Grafting twice yields disjoint copies.
        let gr2 = t.graft(a, &x);
        assert_ne!(gr, gr2);
        assert_eq!(t.live_count(), 9);
    }

    #[test]
    fn modification_journal_insert() {
        let (mut t, a, b, _) = abc();
        t.clear_mods();
        let x = Tree::new("x");
        t.graft(b, &x);
        assert_eq!(t.mod_sites(), &[ModSite { site: b }]);
        assert!(t.subtree_modified(a), "ancestor sees modification");
        assert!(t.subtree_modified(b), "insertion point sees modification");
    }

    #[test]
    fn modification_journal_delete() {
        let (mut t, a, b, c) = abc();
        t.clear_mods();
        t.remove_subtree(c).unwrap();
        assert_eq!(t.mod_sites(), &[ModSite { site: b }]);
        assert!(t.subtree_modified(a));
        assert!(t.subtree_modified(b));
    }

    #[test]
    fn graft_interior_not_separate_sites() {
        let (mut t, _, b, _) = abc();
        t.clear_mods();
        let x = crate::text::parse("x(y(z) w)").unwrap();
        t.graft(b, &x);
        assert_eq!(t.mod_sites().len(), 1, "one graft = one site");
    }

    #[test]
    fn ancestor_queries() {
        let (t, a, b, c) = abc();
        assert!(t.is_ancestor(a, c));
        assert!(t.is_ancestor(a, b));
        assert!(!t.is_ancestor(c, a));
        assert!(!t.is_ancestor(b, b));
        assert!(t.is_ancestor_or_eq(b, b));
        assert_eq!(t.depth(c), 2);
        assert_eq!(t.depth(a), 0);
    }

    #[test]
    fn traversal_orders() {
        let t = crate::text::parse("a(b(d e) c)").unwrap();
        let labels: Vec<&str> = t.nodes().map(|n| t.label(n).as_str()).collect();
        assert_eq!(labels.len(), 5);
        assert_eq!(labels[0], "a");
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn descendants_excludes_self() {
        let (t, a, _, _) = abc();
        assert_eq!(t.descendants(a).count(), 2);
        assert_eq!(t.descendants_or_self(a).count(), 3);
    }

    #[test]
    fn ancestors_iterator() {
        let (t, a, b, c) = abc();
        let up: Vec<_> = t.ancestors(c).collect();
        assert_eq!(up, vec![b, a]);
        assert_eq!(t.ancestors(a).count(), 0);
    }

    #[test]
    fn subtree_extraction() {
        let t = crate::text::parse("a(b(d e) c)").unwrap();
        let b = t.children(t.root())[0];
        let sub = t.subtree_to_tree(b);
        assert_eq!(sub.live_count(), 3);
        assert_eq!(sub.label(sub.root()).as_str(), "b");
    }

    #[test]
    fn clone_preserves_identity() {
        let (t, _, b, _) = abc();
        let mut t2 = t.clone();
        assert_eq!(t2.label(b), t.label(b));
        t2.remove_subtree(b).unwrap();
        assert!(t.is_alive(b), "clone mutation does not affect original");
        assert!(!t2.is_alive(b));
    }

    #[test]
    fn alphabet_and_height() {
        let t = crate::text::parse("a(b(a) b)").unwrap();
        let alpha: Vec<&str> = t.alphabet().iter().map(|s| s.as_str()).collect();
        assert_eq!(alpha.len(), 2);
        assert_eq!(t.height(), 2);
    }
}
