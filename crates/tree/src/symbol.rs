//! Interned node labels — the alphabet Σ.
//!
//! The paper draws labels from an infinite alphabet Σ. We intern label
//! strings process-wide so that label comparison (the hot operation in
//! pattern evaluation) is a single integer compare. Interned strings are
//! leaked; the number of distinct labels in any realistic workload is small
//! and bounded, so this is the standard trade-off (cf. `string-cache`).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned label from the alphabet Σ.
///
/// Two `Symbol`s are equal iff their underlying strings are equal. The
/// wildcard `*` of tree patterns is deliberately **not** a `Symbol`; the
/// pattern layer represents it as the absence of a label constraint
/// (`Option<Symbol>`), mirroring the paper's `Σ ∪ {*}` with `* ∉ Σ`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s` and returns its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        let mut i = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = i.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(i.strings.len()).expect("symbol table overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        i.strings.push(leaked);
        i.map.insert(leaked, id);
        Symbol(id)
    }

    /// The label string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("symbol interner poisoned");
        i.strings[self.0 as usize]
    }

    /// A fresh symbol guaranteed to be distinct from every symbol in
    /// `avoid`. The paper's constructions repeatedly pick "a symbol α not
    /// used in R or X"; this provides one deterministically.
    pub fn fresh(hint: &str, avoid: &[Symbol]) -> Symbol {
        let base = Symbol::intern(hint);
        if !avoid.contains(&base) {
            return base;
        }
        for n in 0u64.. {
            let cand = Symbol::intern(&format!("{hint}#{n}"));
            if !avoid.contains(&cand) {
                return cand;
            }
        }
        unreachable!("exhausted fresh-symbol candidates")
    }

    /// The raw interner index (stable within a process run).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a1 = Symbol::intern("a");
        let a2 = Symbol::intern("a");
        assert_eq!(a1, a2);
        assert_eq!(a1.as_str(), "a");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("left"), Symbol::intern("right"));
    }

    #[test]
    fn fresh_avoids_collisions() {
        let a = Symbol::intern("alpha");
        let f = Symbol::fresh("alpha", &[a]);
        assert_ne!(f, a);
        let g = Symbol::fresh("alpha", &[a, f]);
        assert_ne!(g, a);
        assert_ne!(g, f);
    }

    #[test]
    fn fresh_without_collision_returns_hint() {
        let f = Symbol::fresh("unique-hint-xyz", &[]);
        assert_eq!(f.as_str(), "unique-hint-xyz");
    }

    #[test]
    fn display_and_from() {
        let s: Symbol = "book".into();
        assert_eq!(s.to_string(), "book");
    }

    #[test]
    fn interner_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for j in 0..100 {
                        let s = Symbol::intern(&format!("t{}-{}", i % 2, j));
                        assert_eq!(s.as_str(), format!("t{}-{}", i % 2, j));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
