//! Labeled-tree isomorphism via Aho–Hopcroft–Ullman canonical codes.
//!
//! The paper's *value-based* conflict semantics (Definitions 1, 5, 6)
//! compare **sets of trees up to isomorphism**. Lemma 1 notes that "a
//! slight modification to the algorithm in Aho et al. supports labeled
//! tree isomorphism detection" in linear time; this module implements that
//! modification: each subtree is assigned a canonical *code* such that two
//! subtrees receive the same code iff they are isomorphic as unordered
//! labeled trees. Codes are interned in a [`Canonizer`], so cross-tree
//! comparisons are integer comparisons.

use crate::{NodeId, Symbol, Tree};
use std::collections::HashMap;

/// A canonical code. Equal codes (from the same [`Canonizer`]) ⇔
/// isomorphic subtrees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CanonCode(u32);

/// Interns canonical codes for unordered labeled subtrees.
///
/// A single canonizer can process any number of trees; codes are only
/// comparable within one canonizer.
#[derive(Default)]
pub struct Canonizer {
    table: HashMap<(Symbol, Vec<CanonCode>), CanonCode>,
}

impl Canonizer {
    /// Creates an empty canonizer.
    pub fn new() -> Canonizer {
        Canonizer::default()
    }

    /// Canonical code of `SUBTREE_n(t)`.
    pub fn code(&mut self, t: &Tree, n: NodeId) -> CanonCode {
        assert!(t.is_alive(n), "canonical code of a dead node");
        // Post-order without recursion: children before parents.
        let order: Vec<NodeId> = {
            let mut pre: Vec<NodeId> = t.descendants_or_self(n).collect();
            pre.reverse();
            pre
        };
        let mut codes: HashMap<NodeId, CanonCode> = HashMap::with_capacity(order.len());
        for x in order {
            let mut kid_codes: Vec<CanonCode> = t.children(x).iter().map(|c| codes[c]).collect();
            kid_codes.sort_unstable();
            let key = (t.label(x), kid_codes);
            let next = CanonCode(u32::try_from(self.table.len()).expect("canon overflow"));
            let code = *self.table.entry(key).or_insert(next);
            codes.insert(x, code);
        }
        codes[&n]
    }

    /// Canonical code of a whole tree.
    pub fn code_tree(&mut self, t: &Tree) -> CanonCode {
        self.code(t, t.root())
    }
}

/// Are two trees isomorphic as unordered labeled trees (Definition 1)?
pub fn isomorphic(a: &Tree, b: &Tree) -> bool {
    let mut c = Canonizer::new();
    c.code_tree(a) == c.code_tree(b)
}

/// Are two subtrees (possibly of different trees) isomorphic?
pub fn subtrees_isomorphic(ta: &Tree, na: NodeId, tb: &Tree, nb: NodeId) -> bool {
    let mut c = Canonizer::new();
    c.code(ta, na) == c.code(tb, nb)
}

/// Set-isomorphism of two collections of subtrees (the paper's `T ≅ T'`
/// for sets of trees): there must be a mapping each way sending every tree
/// to an isomorphic partner. This is equality of the two *sets* of
/// canonical codes — multiplicities do not matter, exactly as in
/// Definition 1's set formulation.
pub fn sets_isomorphic(ta: &Tree, nas: &[NodeId], tb: &Tree, nbs: &[NodeId]) -> bool {
    let mut c = Canonizer::new();
    let mut ca: Vec<CanonCode> = nas.iter().map(|&n| c.code(ta, n)).collect();
    let mut cb: Vec<CanonCode> = nbs.iter().map(|&n| c.code(tb, n)).collect();
    ca.sort_unstable();
    ca.dedup();
    cb.sort_unstable();
    cb.dedup();
    ca == cb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse;

    #[test]
    fn identical_trees_isomorphic() {
        let a = parse("a(b c(d))").unwrap();
        let b = parse("a(b c(d))").unwrap();
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn sibling_order_irrelevant() {
        let a = parse("a(b c)").unwrap();
        let b = parse("a(c b)").unwrap();
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn deep_reordering_irrelevant() {
        let a = parse("r(x(p q(s)) x(q(s) p))").unwrap();
        let b = parse("r(x(q(s) p) x(p q(s)))").unwrap();
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn different_labels_not_isomorphic() {
        let a = parse("a(b)").unwrap();
        let b = parse("a(c)").unwrap();
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn different_shape_not_isomorphic() {
        let a = parse("a(b(c))").unwrap();
        let b = parse("a(b c)").unwrap();
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn multiplicity_matters_for_trees() {
        // As *trees* (bijection between children), a(b b) ≇ a(b).
        let a = parse("a(b b)").unwrap();
        let b = parse("a(b)").unwrap();
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn multiplicity_ignored_for_sets() {
        // As *sets of trees*, {b, b} ≅ {b}: Definition 1 only asks for
        // mappings in both directions, not a bijection.
        let t = parse("a(b b c)").unwrap();
        let kids = t.children(t.root());
        let (b1, b2, c) = (kids[0], kids[1], kids[2]);
        assert!(sets_isomorphic(&t, &[b1, b2], &t, &[b1]));
        assert!(!sets_isomorphic(&t, &[b1, c], &t, &[b2]));
    }

    #[test]
    fn subtree_comparison_across_trees() {
        let a = parse("r(x(p q))").unwrap();
        let b = parse("s(y x(q p))").unwrap();
        let na = a.children(a.root())[0];
        let nb = b
            .children(b.root())
            .iter()
            .copied()
            .find(|&n| b.label(n).as_str() == "x")
            .unwrap();
        assert!(subtrees_isomorphic(&a, na, &b, nb));
    }

    #[test]
    fn figure3_value_semantics_example() {
        // Figure 3 of the paper: deleting one of two isomorphic gamma
        // subtrees is invisible to value semantics. Here the two subtrees
        // rooted at the children of the root are isomorphic.
        let t = parse("root(delta(gamma) other(gamma))").unwrap();
        let kids = t.children(t.root());
        let g1 = t.children(kids[0])[0];
        let g2 = t.children(kids[1])[0];
        assert!(sets_isomorphic(&t, &[g1, g2], &t, &[g2]));
    }

    #[test]
    fn codes_stable_across_calls() {
        let t = parse("a(b c)").unwrap();
        let mut c = Canonizer::new();
        let c1 = c.code_tree(&t);
        let c2 = c.code_tree(&t);
        assert_eq!(c1, c2);
    }

    #[test]
    fn large_random_shaped_tree() {
        // A caterpillar vs its mirror — still isomorphic.
        let mut left = String::from("a");
        let mut right = String::from("a");
        for i in 0..50 {
            left = format!("n{i}({left} leaf)");
            right = format!("n{i}(leaf {right})");
        }
        let a = parse(&left).unwrap();
        let b = parse(&right).unwrap();
        assert!(isomorphic(&a, &b));
    }
}
