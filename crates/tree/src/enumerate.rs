//! Exhaustive enumeration of unordered labeled trees up to isomorphism.
//!
//! The NP-side algorithms of the paper decide conflict existence by
//! searching for a witness tree of bounded size (Lemma 11 / Theorems 3, 5)
//! over a bounded alphabet. This module enumerates one representative per
//! isomorphism class of unordered labeled trees with at most `max_nodes`
//! nodes over a given alphabet — the search space of that NP guess.
//!
//! Canonicity: a tree is generated as a root label plus a *multiset* of
//! child subtrees; multisets are produced in nondecreasing order of a
//! canonical index, so each unordered tree appears exactly once. Counts
//! grow exponentially — callers bound `max_nodes` and alphabet size.

use crate::{NodeId, Symbol, Tree};

/// All unordered labeled trees with `1..=max_nodes` nodes over `alphabet`,
/// one representative per isomorphism class.
///
/// Counts grow fast: with 2 labels there are 2, 4, 14, 52, 214, … trees of
/// sizes 1, 2, 3, 4, 5 (cf. OEIS A000151 shape counts). Use
/// [`count_trees`] to pre-check the budget.
pub fn enumerate_trees(alphabet: &[Symbol], max_nodes: usize) -> Vec<Tree> {
    Enumerator::new(alphabet, max_nodes).run()
}

/// Number of trees [`enumerate_trees`] would return, computed without
/// materializing them.
///
/// Saturates at `u128::MAX`: Lemma 11 bounds like `|R|·|U|·(k+1)` can
/// reach dozens of nodes, where the exact class count exceeds 2¹²⁸. Any
/// saturated value still compares `> max_trees` for every practical
/// budget, so the caller's budget check degrades correctly instead of
/// overflowing (which used to panic in debug builds and silently wrap
/// in release builds).
pub fn count_trees(alphabet_len: usize, max_nodes: usize) -> u128 {
    // t[n] = number of classes with exactly n nodes.
    let mut t = vec![0u128; max_nodes + 1];
    if max_nodes == 0 {
        return 0;
    }
    t[1] = alphabet_len as u128;
    for n in 2..=max_nodes {
        // Multisets over all classes of size < n with sizes summing to n-1.
        // f(budget, min_size): number of multisets, where classes are
        // grouped by size and within one size we choose a multiset of
        // classes. We approximate by dynamic programming over "choose k
        // items of size s", iterating sizes from large to small.
        t[n] = (alphabet_len as u128).saturating_mul(multisets(&t, n - 1));
    }
    t.iter().fold(0u128, |acc, &v| acc.saturating_add(v))
}

/// Number of multisets of trees (classes counted by `t[size]`) with total
/// size exactly `budget`. Saturating, like [`count_trees`].
fn multisets(t: &[u128], budget: usize) -> u128 {
    // g[s][b] = multisets using classes of size ≤ s with total b.
    let max_s = budget;
    let mut g = vec![0u128; budget + 1];
    g[0] = 1;
    for s in 1..=max_s {
        let classes = t[s];
        if classes == 0 {
            continue;
        }
        let mut next = vec![0u128; budget + 1];
        for b in 0..=budget {
            // choose k ≥ 0 subtrees of size s: multiset of k from `classes`
            let mut k = 0usize;
            while k * s <= b {
                let ways = multiset_choose(classes, k as u128);
                next[b] = next[b].saturating_add(ways.saturating_mul(g[b - k * s]));
                k += 1;
            }
        }
        g = next;
    }
    g[budget]
}

/// C(n + k - 1, k): multisets of size k from n classes. Returns
/// `u128::MAX` on overflow — a saturated numerator divided by a
/// saturated denominator would *undercount*, which could wave an
/// astronomically large search space past the budget check.
fn multiset_choose(n: u128, k: u128) -> u128 {
    // result = result · (n + i) / (i + 1) keeps an exact integer at
    // every step (it equals C(n + i, i + 1) after step i).
    let mut c: u128 = 1;
    for i in 0..k {
        let Some(x) = c.checked_mul(n.saturating_add(i)) else {
            return u128::MAX;
        };
        c = x / (i + 1);
    }
    c
}

/// Callback receiving one complete multiset choice of (size, index) class
/// references.
type Emit<'e> = &'e mut dyn FnMut(&[(usize, usize)]);

struct Enumerator<'a> {
    alphabet: &'a [Symbol],
    /// classes[n] = canonical trees with exactly n+1 nodes.
    classes: Vec<Vec<Tree>>,
    max_nodes: usize,
}

impl<'a> Enumerator<'a> {
    fn new(alphabet: &'a [Symbol], max_nodes: usize) -> Self {
        Enumerator {
            alphabet,
            classes: Vec::new(),
            max_nodes,
        }
    }

    fn run(mut self) -> Vec<Tree> {
        if self.max_nodes == 0 || self.alphabet.is_empty() {
            return Vec::new();
        }
        // Size 1.
        self.classes
            .push(self.alphabet.iter().map(|&s| Tree::new(s)).collect());
        for n in 2..=self.max_nodes {
            let mut level: Vec<Tree> = Vec::new();
            for &root_label in self.alphabet {
                // Choose a multiset of previously generated classes whose
                // sizes sum to n-1, in nondecreasing (size, index) order.
                let mut chosen: Vec<(usize, usize)> = Vec::new();
                self.fill(n - 1, (1, 0), &mut chosen, &mut |chosen| {
                    let mut t = Tree::new(root_label);
                    let root = t.root();
                    for &(size, idx) in chosen {
                        graft_built(&mut t, root, &self.classes[size - 1][idx]);
                    }
                    level.push(t);
                });
            }
            self.classes.push(level);
        }
        self.classes.into_iter().flatten().collect()
    }

    /// Recursively choose classes with total `budget`, each ≥ `min` in the
    /// (size, index) order, invoking `emit` on every complete choice.
    fn fill(
        &self,
        budget: usize,
        min: (usize, usize),
        chosen: &mut Vec<(usize, usize)>,
        emit: Emit<'_>,
    ) {
        if budget == 0 {
            emit(chosen);
            return;
        }
        let (min_size, min_idx) = min;
        for size in min_size..=budget {
            let start = if size == min_size { min_idx } else { 0 };
            let level = &self.classes[size - 1];
            for idx in start..level.len() {
                chosen.push((size, idx));
                self.fill(budget - size, (size, idx), chosen, emit);
                chosen.pop();
            }
        }
    }
}

/// Grafts without touching the modification journal (these are freshly
/// built trees, not updated documents).
fn graft_built(t: &mut Tree, parent: NodeId, sub: &Tree) {
    let new_root = t.build_child(parent, sub.label(sub.root()));
    let mut stack = vec![(sub.root(), new_root)];
    while let Some((src, dst)) = stack.pop() {
        for &c in sub.children(src) {
            let copy = t.build_child(dst, sub.label(c));
            stack.push((c, copy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::Canonizer;
    use std::collections::HashSet;

    fn syms(labels: &[&str]) -> Vec<Symbol> {
        labels.iter().map(|&s| Symbol::intern(s)).collect()
    }

    #[test]
    fn counts_for_one_label() {
        // Unlabeled rooted unordered trees: 1, 1, 2, 4, 9, 20 (A000081).
        let a = syms(&["a"]);
        assert_eq!(enumerate_trees(&a, 1).len(), 1);
        assert_eq!(enumerate_trees(&a, 2).len(), 2);
        assert_eq!(enumerate_trees(&a, 3).len(), 4);
        assert_eq!(enumerate_trees(&a, 4).len(), 8);
        assert_eq!(enumerate_trees(&a, 5).len(), 17);
        // Cumulative: 1+1+2+4+9 = 17. ✓
    }

    #[test]
    fn counts_for_two_labels() {
        let ab = syms(&["a", "b"]);
        assert_eq!(enumerate_trees(&ab, 1).len(), 2);
        assert_eq!(enumerate_trees(&ab, 2).len(), 6); // 2 + 2*2
        let n3 = enumerate_trees(&ab, 3).len();
        // size-3: root(2) × ({one 2-class}: 4 + {two 1-classes}: C(3,2)=3) = 14
        assert_eq!(n3, 6 + 14);
    }

    #[test]
    fn closed_form_count_matches_enumeration() {
        for (labels, n) in [(1usize, 5usize), (2, 4), (3, 3)] {
            let alpha: Vec<Symbol> = (0..labels)
                .map(|i| Symbol::intern(&format!("cnt{i}")))
                .collect();
            assert_eq!(
                count_trees(labels, n),
                enumerate_trees(&alpha, n).len() as u128,
                "labels={labels} n={n}"
            );
        }
    }

    #[test]
    fn no_duplicates_up_to_isomorphism() {
        let ab = syms(&["a", "b"]);
        let trees = enumerate_trees(&ab, 4);
        let mut canon = Canonizer::new();
        let mut seen = HashSet::new();
        for t in &trees {
            assert!(seen.insert(canon.code_tree(t)), "duplicate class: {t:?}");
        }
    }

    #[test]
    fn covers_all_small_trees() {
        // Every unordered labeled tree with ≤3 nodes over {a,b} must be
        // isomorphic to an enumerated one.
        let ab = syms(&["a", "b"]);
        let trees = enumerate_trees(&ab, 3);
        let mut canon = Canonizer::new();
        let codes: HashSet<_> = trees.iter().map(|t| canon.code_tree(t)).collect();
        for src in ["a", "b", "a(b)", "a(a b)", "b(a(a))", "a(b(b))", "b(b b)"] {
            let t = crate::text::parse(src).unwrap();
            assert!(codes.contains(&canon.code_tree(&t)), "missing {src}");
        }
    }

    #[test]
    fn sizes_respect_bound() {
        let ab = syms(&["a", "b"]);
        for t in enumerate_trees(&ab, 4) {
            assert!(t.live_count() <= 4);
        }
    }

    #[test]
    fn count_saturates_instead_of_overflowing() {
        // Lemma-11-sized budgets (|R|·|U|·(k+1) can reach dozens of
        // nodes) push the exact class count past 2¹²⁸; the counter must
        // saturate, not wrap or panic.
        let big = count_trees(10, 80);
        assert!(big > u128::MAX / 2, "saturated: {big}");
        // Monotone in both arguments around the saturation region.
        assert!(count_trees(10, 80) >= count_trees(10, 40));
        assert!(count_trees(10, 40) >= count_trees(5, 40));
    }

    #[test]
    fn empty_inputs() {
        assert!(enumerate_trees(&[], 3).is_empty());
        assert!(enumerate_trees(&syms(&["a"]), 0).is_empty());
        assert_eq!(count_trees(2, 0), 0);
    }
}
