//! Minimal element-only XML reader and writer.
//!
//! The paper's tree model carries only node labels, so this module maps a
//! (well-formed, element-only) XML document onto a [`Tree`] and back:
//!
//! * element names become labels;
//! * attributes are folded into child nodes labeled `@name=value` (the
//!   model has no attribute axis, but round-tripping should not lose data);
//! * non-whitespace text content becomes child nodes labeled `#text=…`
//!   with XML entities decoded;
//! * comments and processing instructions are skipped.
//!
//! This is a substrate implementation, not a conformant XML parser: it
//! handles the documents used by the examples, generators, and tests
//! without pulling in an external XML dependency (which the reproduction
//! brief flags as thin on this platform).
//!
//! Parsing is **streaming**: [`XmlReader`] is a pull (SAX-style) event
//! reader whose only state is the stack of open element names, and
//! [`parse_stream`] (the engine behind [`parse`]) folds its events into
//! a [`Tree`] with an explicit parent stack. Nothing recurses on
//! document structure, so nesting depth is bounded by memory rather
//! than the call stack, and consumers like the `cxu-index` structural
//! index builder can ingest multi-MB documents event by event without
//! materializing a tree at all.

use crate::{NodeId, Tree};
use std::fmt;

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for XmlError {}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || "_-.:".contains(c)) {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(&self.src[start..self.pos])
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.eat("<!--") {
                match self.rest().find("-->") {
                    Some(i) => self.pos += i + 3,
                    None => return self.err("unterminated comment"),
                }
            } else if self.rest().starts_with("<?") {
                match self.rest().find("?>") {
                    Some(i) => self.pos += i + 2,
                    None => return self.err("unterminated processing instruction"),
                }
            } else if self.rest().starts_with("<!DOCTYPE") {
                match self.rest().find('>') {
                    Some(i) => self.pos += i + 1,
                    None => return self.err("unterminated DOCTYPE"),
                }
            } else {
                return Ok(());
            }
        }
    }
}

fn decode_entities(s: &str, at: usize) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let semi = rest.find(';').ok_or(XmlError {
            at: at + i,
            msg: "unterminated entity".into(),
        })?;
        let ent = &rest[..semi];
        out.push(match ent {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "quot" => '"',
            "apos" => '\'',
            _ if ent.starts_with('#') => decode_char_ref(ent, at + i)?,
            _ => {
                return Err(XmlError {
                    at: at + i,
                    msg: format!("unknown entity &{ent};"),
                })
            }
        });
        for _ in 0..=semi {
            chars.next();
        }
    }
    Ok(out)
}

/// Decodes a numeric character reference body (`#65` or `#x41`, the
/// leading `&` and trailing `;` already stripped). Rejects malformed
/// digits and codepoints that are not Unicode scalar values (surrogates,
/// out-of-range) or NUL — those cannot appear in a document at all.
fn decode_char_ref(ent: &str, at: usize) -> Result<char, XmlError> {
    let digits = &ent[1..];
    let code = match digits.strip_prefix(['x', 'X']) {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => digits.parse::<u32>(),
    }
    .map_err(|_| XmlError {
        at,
        msg: format!("malformed numeric character reference &{ent};"),
    })?;
    char::from_u32(code).filter(|&c| c != '\0').ok_or(XmlError {
        at,
        msg: format!("invalid character reference &{ent}; (U+{code:04X})"),
    })
}

/// Escapes text so that [`parse`] recovers it exactly, in element
/// content and attribute values alike: the five XML specials become
/// named entities, and control characters plus *leading/trailing*
/// whitespace become numeric character references (the reader trims
/// raw edge whitespace before decoding, so only encoded whitespace
/// survives a roundtrip — exactly the fidelity contract we want for
/// labels like `#text= x `).
fn encode_text(s: &str, out: &mut String) {
    let lead = s.len() - s.trim_start().len();
    let trail = s.trim_end().len();
    for (i, c) in s.char_indices() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c if (c as u32) < 0x20 || (c.is_whitespace() && (i < lead || i >= trail)) => {
                out.push_str(&format!("&#{};", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One event from the pull [`XmlReader`]. Events arrive in document
/// order: one `Open` per start tag, then its `Attr`s, then its content
/// (`Text` and nested elements), then exactly one `Close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// A start tag: the element name, borrowed from the source.
    Open(&'a str),
    /// One attribute of the most recently opened element.
    Attr {
        /// The attribute name, borrowed from the source.
        name: &'a str,
        /// The attribute value with entities decoded.
        value: String,
    },
    /// Non-whitespace text content, raw-trimmed then decoded (see the
    /// fidelity note on [`XmlReader::next_event`]).
    Text(String),
    /// The end of the most recently open element (explicit or `/>`).
    Close,
}

enum ReaderState {
    /// Before the root element's start tag.
    Prolog,
    /// Inside a start tag, emitting attributes.
    InTag,
    /// Between tags, emitting text and child elements.
    Content,
    /// After the root element closed.
    Epilog,
}

/// A pull (SAX-style) reader over an element-only XML document.
///
/// The reader holds only the stack of currently open element names —
/// `O(depth)` state, no recursion, no whole-document token buffering —
/// so arbitrarily deep and multi-MB documents stream through safely.
/// Consumers that want a materialized [`Tree`] use [`parse_stream`];
/// consumers that build their own representation (the `cxu-index`
/// structural index builder) drive [`XmlReader::next_event`] directly
/// and never allocate a tree at all.
pub struct XmlReader<'a> {
    lx: Lexer<'a>,
    /// Names of open elements, outermost first.
    open: Vec<&'a str>,
    state: ReaderState,
}

impl<'a> XmlReader<'a> {
    /// A reader positioned at the start of `src`.
    pub fn new(src: &'a str) -> XmlReader<'a> {
        XmlReader {
            lx: Lexer { src, pos: 0 },
            open: Vec::new(),
            state: ReaderState::Prolog,
        }
    }

    /// Nesting depth of the element the reader is currently inside.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Current byte offset into the source.
    pub fn pos(&self) -> usize {
        self.lx.pos
    }

    /// The next event, or `Ok(None)` once the document is exhausted
    /// (the root element closed and only misc content remains).
    ///
    /// Text fidelity: raw text is trimmed *before* entity decoding, so
    /// insignificant markup whitespace disappears while whitespace
    /// spelled as a character reference (`&#32;`) survives — this is
    /// what makes `parse(to_xml(t))` exact for labels with edge
    /// whitespace.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent<'a>>, XmlError> {
        let src: &'a str = self.lx.src;
        loop {
            match self.state {
                ReaderState::Prolog => {
                    self.lx.skip_misc()?;
                    if self.lx.peek() != Some('<') {
                        return self.lx.err("expected root element");
                    }
                    self.lx.eat("<");
                    let name = self.lx.name()?;
                    self.open.push(name);
                    self.state = ReaderState::InTag;
                    return Ok(Some(XmlEvent::Open(name)));
                }
                ReaderState::InTag => {
                    self.lx.skip_ws();
                    match self.lx.peek() {
                        Some('/') | Some('>') => {
                            if self.lx.eat("/>") {
                                self.open.pop();
                                self.state = if self.open.is_empty() {
                                    ReaderState::Epilog
                                } else {
                                    ReaderState::Content
                                };
                                return Ok(Some(XmlEvent::Close));
                            }
                            if !self.lx.eat(">") {
                                return self.lx.err("expected '>'");
                            }
                            self.state = ReaderState::Content;
                        }
                        Some(_) => {
                            let name = self.lx.name()?;
                            self.lx.skip_ws();
                            if !self.lx.eat("=") {
                                return self.lx.err("expected '=' in attribute");
                            }
                            self.lx.skip_ws();
                            let quote = match self.lx.bump() {
                                Some(q @ ('"' | '\'')) => q,
                                _ => return self.lx.err("expected quoted attribute value"),
                            };
                            let start = self.lx.pos;
                            while self.lx.peek().is_some_and(|c| c != quote) {
                                self.lx.bump();
                            }
                            let raw = &src[start..self.lx.pos];
                            if self.lx.bump().is_none() {
                                return self.lx.err("unterminated attribute value");
                            }
                            let value = decode_entities(raw, start)?;
                            return Ok(Some(XmlEvent::Attr { name, value }));
                        }
                        None => return self.lx.err("unterminated start tag"),
                    }
                }
                ReaderState::Content => {
                    let text_start = self.lx.pos;
                    while self.lx.peek().is_some_and(|c| c != '<') {
                        self.lx.bump();
                    }
                    let raw = &src[text_start..self.lx.pos];
                    let trimmed = raw.trim();
                    if !trimmed.is_empty() {
                        let lead = raw.len() - raw.trim_start().len();
                        let text = decode_entities(trimmed, text_start + lead)?;
                        return Ok(Some(XmlEvent::Text(text)));
                    }
                    if self.lx.peek().is_none() {
                        return self.lx.err("unterminated element content");
                    }
                    if self.lx.rest().starts_with("</") {
                        self.lx.eat("</");
                        let end = self.lx.name()?;
                        let name = self.open.pop().expect("Content implies an open element");
                        if end != name {
                            return self
                                .lx
                                .err(format!("mismatched end tag: <{name}> closed by </{end}>"));
                        }
                        self.lx.skip_ws();
                        if !self.lx.eat(">") {
                            return self.lx.err("expected '>' in end tag");
                        }
                        if self.open.is_empty() {
                            self.state = ReaderState::Epilog;
                        }
                        return Ok(Some(XmlEvent::Close));
                    }
                    if self.lx.rest().starts_with("<!--") || self.lx.rest().starts_with("<?") {
                        self.lx.skip_misc()?;
                        continue;
                    }
                    self.lx.eat("<");
                    let name = self.lx.name()?;
                    self.open.push(name);
                    self.state = ReaderState::InTag;
                    return Ok(Some(XmlEvent::Open(name)));
                }
                ReaderState::Epilog => {
                    self.lx.skip_misc()?;
                    if self.lx.pos != src.len() {
                        return self.lx.err("trailing content after root element");
                    }
                    return Ok(None);
                }
            }
        }
    }
}

/// Parses an element-only XML document into a [`Tree`]. The returned
/// tree's modification journal is empty.
///
/// This is [`parse_stream`] under its historical name: parsing routes
/// through the pull [`XmlReader`] with an explicit parent stack, so
/// nesting depth is bounded by memory, not the call stack.
pub fn parse(src: &str) -> Result<Tree, XmlError> {
    parse_stream(src)
}

/// Builds a [`Tree`] by draining an [`XmlReader`] event stream. One
/// pass, `O(depth)` auxiliary state, no recursion: a 100k-deep document
/// parses without touching the call stack.
pub fn parse_stream(src: &str) -> Result<Tree, XmlError> {
    let mut rd = XmlReader::new(src);
    let mut tree: Option<Tree> = None;
    let mut stack: Vec<NodeId> = Vec::new();
    while let Some(ev) = rd.next_event()? {
        match ev {
            XmlEvent::Open(name) => {
                let me = attach(&mut tree, stack.last().copied(), name);
                stack.push(me);
            }
            XmlEvent::Attr { name, value } => {
                let me = *stack.last().expect("Attr follows an Open");
                let t = tree.as_mut().expect("tree exists once root attached");
                t.build_child(me, format!("@{name}={value}").as_str());
            }
            XmlEvent::Text(text) => {
                let me = *stack.last().expect("Text arrives inside an element");
                let t = tree.as_mut().expect("tree exists once root attached");
                t.build_child(me, format!("#text={text}").as_str());
            }
            XmlEvent::Close => {
                stack.pop();
            }
        }
    }
    Ok(tree.expect("a completed document has a root element"))
}

fn attach(tree: &mut Option<Tree>, parent: Option<NodeId>, label: &str) -> NodeId {
    match (tree.as_mut(), parent) {
        (Some(t), Some(p)) => t.build_child(p, label),
        (None, None) => {
            let t = Tree::new(label);
            let root = t.root();
            *tree = Some(t);
            root
        }
        _ => unreachable!("root element parsed exactly once"),
    }
}

/// Serializes a tree to XML, reversing the label conventions of [`parse`].
/// Children are emitted in canonical (sorted) order for stable output.
pub fn to_xml(t: &Tree) -> String {
    let mut out = String::new();
    write_element(t, t.root(), &mut out, 0);
    out
}

fn write_element(t: &Tree, n: NodeId, out: &mut String, indent: usize) {
    let label = t.label(n).as_str();
    if let Some(text) = label.strip_prefix("#text=") {
        for _ in 0..indent {
            out.push_str("  ");
        }
        encode_text(text, out);
        out.push('\n');
        return;
    }
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(label);

    // Attributes first, sorted; then remaining children, sorted by
    // rendered form (stable for the unordered model).
    let mut attrs: Vec<&str> = Vec::new();
    let mut kids: Vec<NodeId> = Vec::new();
    for &c in t.children(n) {
        let cl = t.label(c).as_str();
        if let Some(a) = cl.strip_prefix('@') {
            attrs.push(a);
        } else {
            kids.push(c);
        }
    }
    attrs.sort_unstable();
    for a in attrs {
        let (name, value) = a.split_once('=').unwrap_or((a, ""));
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        encode_text(value, out);
        out.push('"');
    }

    if kids.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push_str(">\n");
    kids.sort_by_key(|&c| crate::text::subtree_to_text(t, c));
    for c in kids {
        write_element(t, c, out, indent + 1);
    }
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str("</");
    out.push_str(label);
    out.push_str(">\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text;

    #[test]
    fn parse_simple_document() {
        let t = parse("<inventory><book><title/><quantity/></book></inventory>").unwrap();
        assert_eq!(text::to_text(&t), "inventory(book(quantity title))");
    }

    #[test]
    fn self_closing_and_nested() {
        let t = parse("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(t.live_count(), 4);
    }

    #[test]
    fn attributes_become_children() {
        let t = parse(r#"<book isbn="123" lang="en"/>"#).unwrap();
        let labels: Vec<&str> = t
            .children(t.root())
            .iter()
            .map(|&c| t.label(c).as_str())
            .collect();
        assert!(labels.contains(&"@isbn=123"));
        assert!(labels.contains(&"@lang=en"));
    }

    #[test]
    fn text_becomes_children() {
        let t = parse("<q>7</q>").unwrap();
        assert_eq!(t.label(t.children(t.root())[0]).as_str(), "#text=7");
    }

    #[test]
    fn whitespace_only_text_skipped() {
        let t = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(t.live_count(), 2);
    }

    #[test]
    fn entities_decoded() {
        let t = parse("<a>x &lt; y &amp; z</a>").unwrap();
        assert_eq!(t.label(t.children(t.root())[0]).as_str(), "#text=x < y & z");
    }

    #[test]
    fn comments_pi_doctype_skipped() {
        let t = parse("<?xml version=\"1.0\"?><!DOCTYPE a><!-- hi --><a><!-- inner --><b/></a>")
            .unwrap();
        assert_eq!(t.live_count(), 2);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(e.msg.contains("mismatched"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn roundtrip() {
        let src = r#"<site><book isbn="1"><title>T &amp; U</title></book><book isbn="2"/></site>"#;
        let t = parse(src).unwrap();
        let xml = to_xml(&t);
        let t2 = parse(&xml).unwrap();
        assert!(crate::iso::isomorphic(&t, &t2), "roundtrip:\n{xml}");
    }

    #[test]
    fn numeric_char_refs_decoded() {
        let t = parse("<a>&#65;&#x42;&#x63;</a>").unwrap();
        assert_eq!(t.label(t.children(t.root())[0]).as_str(), "#text=ABc");
        let t = parse("<a>&#233;&#x1F600;</a>").unwrap();
        assert_eq!(
            t.label(t.children(t.root())[0]).as_str(),
            "#text=\u{e9}\u{1F600}"
        );
    }

    #[test]
    fn numeric_char_refs_in_attributes() {
        let t = parse(r#"<a k="&#65;&#32;B"/>"#).unwrap();
        assert_eq!(t.label(t.children(t.root())[0]).as_str(), "@k=A B");
    }

    #[test]
    fn invalid_char_refs_rejected() {
        for src in [
            "<a>&#0;</a>",       // NUL
            "<a>&#xD800;</a>",   // surrogate
            "<a>&#x110000;</a>", // beyond Unicode
            "<a>&#;</a>",        // no digits
            "<a>&#x;</a>",       // no hex digits
            "<a>&#12a;</a>",     // trailing garbage
            "<a>&#-3;</a>",      // sign
            "<a k=\"&#0;\"/>",   // attribute position
            "<a>&bogus;</a>",    // unknown named entity
            "<a>&amp</a>",       // unterminated
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.msg.contains("character reference") || e.msg.contains("entity"),
                "{src}: {e}"
            );
        }
    }

    #[test]
    fn every_escaped_char_roundtrips() {
        for c in ['<', '>', '&', '"', '\'', '\n', '\t', '\r', ' ', '\u{1}'] {
            for text in [format!("{c}"), format!("{c}mid{c}"), format!("a{c}b")] {
                let mut t = Tree::new("r");
                t.build_child(t.root(), format!("#text={text}").as_str());
                t.build_child(t.root(), format!("@k={text}").as_str());
                let xml = to_xml(&t);
                let t2 = parse(&xml).unwrap_or_else(|e| panic!("{text:?}: {e}\n{xml}"));
                assert!(
                    crate::iso::isomorphic(&t, &t2),
                    "char {c:?} text {text:?}:\n{xml}"
                );
            }
        }
    }

    #[test]
    fn edge_whitespace_survives_roundtrip() {
        let mut t = Tree::new("r");
        t.build_child(t.root(), "#text= padded ");
        let xml = to_xml(&t);
        assert!(xml.contains("&#32;padded&#32;"), "{xml}");
        let t2 = parse(&xml).unwrap();
        assert!(crate::iso::isomorphic(&t, &t2), "{xml}");
    }

    #[test]
    fn fuzz_roundtrip_seeded() {
        // SplitMix64, inlined: cxu-tree sits below cxu-gen in the
        // dependency order, so it carries its own tiny PRNG for tests.
        struct Sm(u64);
        impl Sm {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            }
            fn below(&mut self, n: usize) -> usize {
                (self.next() % n as u64) as usize
            }
        }
        const POOL: &[char] = &[
            '<', '>', '&', '"', '\'', ' ', '\t', '\n', 'x', 'y', '7', '\u{e9}', '\u{3}',
        ];
        fn rand_text(rng: &mut Sm) -> String {
            (0..1 + rng.below(6))
                .map(|_| POOL[rng.below(POOL.len())])
                .collect()
        }
        fn grow(t: &mut Tree, at: NodeId, depth: usize, rng: &mut Sm) {
            if rng.below(2) == 0 {
                let label = format!("@k{}={}", rng.below(3), rand_text(rng));
                t.build_child(at, label.as_str());
            }
            if rng.below(2) == 0 {
                t.build_child(at, format!("#text={}", rand_text(rng)).as_str());
            }
            if depth < 3 {
                for _ in 0..rng.below(3) {
                    let c = t.build_child(at, ["a", "b", "c"][rng.below(3)]);
                    grow(t, c, depth + 1, rng);
                }
            }
        }
        let mut rng = Sm(0xC0FFEE);
        for case in 0..200 {
            let mut t = Tree::new("root");
            let root = t.root();
            grow(&mut t, root, 0, &mut rng);
            let xml = to_xml(&t);
            let t2 = parse(&xml).unwrap_or_else(|e| panic!("case {case}: {e}\n{xml}"));
            assert!(crate::iso::isomorphic(&t, &t2), "case {case}:\n{xml}");
        }
    }

    #[test]
    fn reader_event_stream_shape() {
        let mut rd = XmlReader::new(r#"<a k="v"><b>hi</b><c/></a>"#);
        let mut events = Vec::new();
        while let Some(ev) = rd.next_event().unwrap() {
            events.push(ev);
        }
        assert_eq!(
            events,
            vec![
                XmlEvent::Open("a"),
                XmlEvent::Attr {
                    name: "k",
                    value: "v".into()
                },
                XmlEvent::Open("b"),
                XmlEvent::Text("hi".into()),
                XmlEvent::Close,
                XmlEvent::Open("c"),
                XmlEvent::Close,
                XmlEvent::Close,
            ]
        );
        assert_eq!(rd.depth(), 0);
    }

    #[test]
    fn reader_rejects_unbalanced_documents() {
        let drain = |src: &str| -> Result<usize, XmlError> {
            let mut rd = XmlReader::new(src);
            let mut n = 0;
            while rd.next_event()?.is_some() {
                n += 1;
            }
            Ok(n)
        };
        assert!(drain("<a><b></a></b>")
            .unwrap_err()
            .msg
            .contains("mismatched"));
        assert!(drain("<a>").is_err());
        assert!(drain("<a/><b/>").is_err());
        assert!(drain("").is_err());
    }

    #[test]
    fn hundred_thousand_deep_document_parses() {
        // Regression for the old recursive-descent parser, which blew
        // the stack near ~10k nesting levels. The streaming reader's
        // state is an explicit Vec, so 100k levels are routine.
        let depth = 100_000;
        let mut src = String::with_capacity(depth * 8 + 16);
        for _ in 0..depth {
            src.push_str("<d>");
        }
        src.push_str("<leaf/>");
        for _ in 0..depth {
            src.push_str("</d>");
        }
        let t = parse(&src).unwrap();
        assert_eq!(t.live_count(), depth + 1);
        // Walk the chain iteratively; `Tree::height()` is O(n·depth).
        let mut measured = 0usize;
        let mut cur = t.root();
        while let Some(&c) = t.children(cur).first() {
            cur = c;
            measured += 1;
        }
        assert_eq!(measured, depth);
        assert_eq!(t.label(cur).as_str(), "leaf");
    }

    #[test]
    fn parse_stream_is_parse() {
        let src = r#"<site><book isbn="1"><title>T</title></book></site>"#;
        let a = parse(src).unwrap();
        let b = parse_stream(src).unwrap();
        assert!(crate::iso::isomorphic(&a, &b));
    }

    #[test]
    fn figure1_document() {
        // Figure 1 of the paper, approximated: an inventory of books.
        let src = "<inventory>\
                     <book><title/><info><quantity>5</quantity></info></book>\
                     <book><title/><info><quantity>12</quantity></info></book>\
                   </inventory>";
        let t = parse(src).unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
        assert_eq!(t.live_count(), 11);
    }
}
