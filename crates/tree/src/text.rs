//! A compact textual term syntax for trees: `a(b c(d))`.
//!
//! Labels are sequences of characters other than whitespace and `()`.
//! Children are whitespace-separated inside parentheses; commas are also
//! accepted as separators for readability. The writer emits children in
//! **canonically sorted** order (by label string, then recursively), so
//! `to_text` is a stable display form for the *unordered* tree model —
//! isomorphic trees print identically.

use crate::{NodeId, Tree};
use std::fmt;

/// Parse error for the term syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTreeError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tree parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseTreeError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseTreeError> {
        Err(ParseTreeError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace() || c == ',') {
            self.bump();
        }
    }

    fn label(&mut self) -> Result<&'a str, ParseTreeError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if !c.is_whitespace() && c != '(' && c != ')' && c != ',')
        {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected a label");
        }
        Ok(&self.src[start..self.pos])
    }

    /// node := label ( '(' node* ')' )?
    fn node(&mut self, tree: &mut Tree, parent: Option<NodeId>) -> Result<NodeId, ParseTreeError> {
        let label = self.label()?;
        let id = match parent {
            Some(p) => tree.build_child(p, label),
            None => {
                // Root label was supplied to Tree::new by the caller; this
                // branch is only used through `parse`, which handles it.
                unreachable!("root handled by parse()")
            }
        };
        self.children(tree, id)?;
        Ok(id)
    }

    fn children(&mut self, tree: &mut Tree, parent: NodeId) -> Result<(), ParseTreeError> {
        self.skip_ws();
        if self.peek() == Some('(') {
            self.bump();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(')') => {
                        self.bump();
                        break;
                    }
                    Some(_) => {
                        self.node(tree, Some(parent))?;
                    }
                    None => return self.err("unclosed '('"),
                }
            }
        }
        Ok(())
    }
}

/// Parses the term syntax into a [`Tree`]. The modification journal of the
/// returned tree is empty.
pub fn parse(src: &str) -> Result<Tree, ParseTreeError> {
    let mut p = Parser { src, pos: 0 };
    p.skip_ws();
    let root_label = p.label()?;
    let mut tree = Tree::new(root_label);
    let root = tree.root();
    p.children(&mut tree, root)?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input after tree");
    }
    debug_assert!(tree.mod_sites().is_empty());
    Ok(tree)
}

/// Renders the subtree rooted at `n` in canonical (sorted) term syntax.
pub fn subtree_to_text(t: &Tree, n: NodeId) -> String {
    let mut out = String::new();
    write_node(t, n, &mut out);
    out
}

/// Renders the whole tree in canonical (sorted) term syntax.
pub fn to_text(t: &Tree) -> String {
    subtree_to_text(t, t.root())
}

fn write_node(t: &Tree, n: NodeId, out: &mut String) {
    out.push_str(t.label(n).as_str());
    if !t.children(n).is_empty() {
        let mut rendered: Vec<String> = t
            .children(n)
            .iter()
            .map(|&c| subtree_to_text(t, c))
            .collect();
        rendered.sort_unstable();
        out.push('(');
        for (i, r) in rendered.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(r);
        }
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let t = parse("a(b c(d))").unwrap();
        assert_eq!(to_text(&t), "a(b c(d))");
    }

    #[test]
    fn single_node() {
        let t = parse("root").unwrap();
        assert_eq!(t.live_count(), 1);
        assert_eq!(to_text(&t), "root");
    }

    #[test]
    fn commas_and_whitespace() {
        let t = parse("  a ( b , c(d,e) )  ").unwrap();
        assert_eq!(t.live_count(), 5);
    }

    #[test]
    fn canonical_output_sorts_children() {
        let t1 = parse("a(c b)").unwrap();
        let t2 = parse("a(b c)").unwrap();
        assert_eq!(to_text(&t1), to_text(&t2));
        assert_eq!(to_text(&t1), "a(b c)");
    }

    #[test]
    fn canonical_output_sorts_recursively() {
        let t1 = parse("a(b(z y) b(x))").unwrap();
        let t2 = parse("a(b(x) b(y z))").unwrap();
        assert_eq!(to_text(&t1), to_text(&t2));
    }

    #[test]
    fn error_unclosed() {
        let e = parse("a(b").unwrap_err();
        assert!(e.msg.contains("unclosed"), "{e}");
    }

    #[test]
    fn error_trailing() {
        let e = parse("a(b) c").unwrap_err();
        assert!(e.msg.contains("trailing"), "{e}");
    }

    #[test]
    fn error_empty() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn error_bare_parens() {
        assert!(parse("(a)").is_err());
    }

    #[test]
    fn labels_with_punctuation() {
        let t = parse("ns:book(_id x-1)").unwrap();
        assert_eq!(t.label(t.root()).as_str(), "ns:book");
        assert_eq!(t.children(t.root()).len(), 2);
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("a(");
        }
        s.push('b');
        for _ in 0..200 {
            s.push(')');
        }
        let t = parse(&s).unwrap();
        assert_eq!(t.live_count(), 201);
        assert_eq!(t.height(), 200);
    }
}
