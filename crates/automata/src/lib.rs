//! # cxu-automata — NFAs over label alphabets with a wildcard
//!
//! The PTIME conflict-detection algorithms of §4 reduce *matching* of
//! linear patterns (Definition 7) to regular-language intersection: a
//! linear pattern `l` denotes the regular expression
//!
//! ```text
//! ℛ(l) = sym(root) · step₁ · step₂ · …        where
//! stepᵢ = sym(nᵢ)           for a child edge
//! stepᵢ = (.)* · sym(nᵢ)    for a descendant edge
//! sym(n) = the node's label, or (.) for *
//! ```
//!
//! and `l, l'` *match strongly* iff `L(ℛ(l)) ∩ L(ℛ(l')) ≠ ∅`, *weakly*
//! iff `L(ℛ(l)) ∩ L(ℛ(l')·(.)*) ≠ ∅`.
//!
//! This crate implements that machinery without depending on the pattern
//! types: an [`Nfa`] is generic over the symbol type, built from a list of
//! [`Step`]s. The `(.)` wildcard is first-class (a [`Label::Any`]
//! transition), so the *effective* alphabet — the symbols of both operands
//! plus one implicit "fresh" letter — never needs materializing beyond the
//! product construction in [`Nfa::intersects`].

use std::collections::HashSet;
use std::hash::Hash;

pub mod compiled;

/// A transition label: a concrete symbol or the wildcard `(.)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Label<T> {
    /// Matches exactly this symbol.
    Sym(T),
    /// Matches any symbol (the paper's `(.)`).
    Any,
}

/// One step of a linear pattern, in root-to-output order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step<T> {
    /// `true` iff the step is reached via a descendant edge, contributing
    /// a `(.)*` gap before its symbol. The first step's gap is `false` in
    /// the paper's construction (the root consumes its own symbol), but
    /// `true` is permitted to express prefixes like `(.)* · a`.
    pub gap: bool,
    /// The step's own symbol, or [`Label::Any`] for `*`.
    pub label: Label<T>,
}

impl<T> Step<T> {
    /// A step reached by a child edge.
    pub fn child(label: Label<T>) -> Step<T> {
        Step { gap: false, label }
    }

    /// A step reached by a descendant edge (`(.)*` gap).
    pub fn descendant(label: Label<T>) -> Step<T> {
        Step { gap: true, label }
    }
}

/// A nondeterministic finite automaton without ε-transitions, over symbols
/// `T` plus the implicit wildcard.
#[derive(Clone, Debug)]
pub struct Nfa<T> {
    /// trans[q] = outgoing (label, target) pairs.
    trans: Vec<Vec<(Label<T>, usize)>>,
    start: usize,
    accept: Vec<bool>,
}

impl<T: Copy + Eq + Hash> Nfa<T> {
    /// Builds the NFA for `ℛ(l)` from the linear steps of `l`.
    ///
    /// State `i` means "the first `i` steps have been consumed"; a step
    /// with `gap == true` adds an `Any` self-loop before its symbol
    /// transition, realizing `(.)*`.
    pub fn from_steps(steps: &[Step<T>]) -> Nfa<T> {
        let n = steps.len();
        let mut trans: Vec<Vec<(Label<T>, usize)>> = vec![Vec::new(); n + 1];
        for (i, step) in steps.iter().enumerate() {
            if step.gap {
                trans[i].push((Label::Any, i));
            }
            trans[i].push((step.label, i + 1));
        }
        let mut accept = vec![false; n + 1];
        accept[n] = true;
        Nfa {
            trans,
            start: 0,
            accept,
        }
    }

    /// Appends `(.)*` to the language: every accepting state gets an `Any`
    /// self-loop. This turns `ℛ(l')` into `ℛ(l')·(.)*` for weak matching.
    pub fn with_any_suffix(mut self) -> Nfa<T> {
        for q in 0..self.trans.len() {
            if self.accept[q] {
                self.trans[q].push((Label::Any, q));
            }
        }
        self
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// The concrete symbols mentioned on any transition.
    pub fn symbols(&self) -> HashSet<T> {
        self.trans
            .iter()
            .flatten()
            .filter_map(|&(l, _)| match l {
                Label::Sym(s) => Some(s),
                Label::Any => None,
            })
            .collect()
    }

    /// Does the automaton accept `word`? (Subset simulation; used by
    /// tests and by brute-force cross-validation.)
    pub fn accepts(&self, word: &[T]) -> bool {
        // Two scratch frontiers reused across the whole word: clear +
        // swap instead of a fresh allocation per letter.
        let mut cur: HashSet<usize> = HashSet::from([self.start]);
        let mut next: HashSet<usize> = HashSet::new();
        for &a in word {
            next.clear();
            for &q in &cur {
                for &(l, to) in &self.trans[q] {
                    let fires = match l {
                        Label::Sym(s) => s == a,
                        Label::Any => true,
                    };
                    if fires {
                        next.insert(to);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur.iter().any(|&q| self.accept[q])
    }

    /// Is `L(self) ∩ L(other)` nonempty?
    ///
    /// Product construction with the effective alphabet `Σ_self ∪ Σ_other`
    /// plus one implicit fresh letter (on which only `Any` transitions
    /// fire) — the paper's observation that witness labels can be
    /// restricted to `Σ_{l,l'}` (§4.1), kept honest for wildcard-only
    /// moves by the extra letter.
    pub fn intersects(&self, other: &Nfa<T>) -> bool {
        // Move alphabet: Some(symbol) for named concrete symbols, None
        // for "a letter neither automaton names". Collected once into a
        // single Vec straight from the transition tables (no interim
        // HashSets); the tables are tiny, so linear-scan dedup wins.
        let mut moves: Vec<Option<T>> = Vec::new();
        for &(l, _) in self.trans.iter().chain(other.trans.iter()).flatten() {
            if let Label::Sym(s) = l {
                if !moves.contains(&Some(s)) {
                    moves.push(Some(s));
                }
            }
        }
        moves.push(None);

        let width = other.state_count();
        let enc = |q1: usize, q2: usize| q1 * width + q2;
        let mut seen = vec![false; self.state_count() * width];
        let mut queue = vec![(self.start, other.start)];
        seen[enc(self.start, other.start)] = true;

        while let Some((q1, q2)) = queue.pop() {
            if self.accept[q1] && other.accept[q2] {
                return true;
            }
            for &m in &moves {
                let fires = |l: Label<T>| match (l, m) {
                    (Label::Any, _) => true,
                    (Label::Sym(s), Some(a)) => s == a,
                    (Label::Sym(_), None) => false,
                };
                for &(l1, to1) in &self.trans[q1] {
                    if !fires(l1) {
                        continue;
                    }
                    for &(l2, to2) in &other.trans[q2] {
                        if !fires(l2) {
                            continue;
                        }
                        if !seen[enc(to1, to2)] {
                            seen[enc(to1, to2)] = true;
                            queue.push((to1, to2));
                        }
                    }
                }
            }
        }
        false
    }

    /// Is the language empty? (For step-built NFAs it never is, but the
    /// check is useful for composed automata and for tests.)
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.state_count()];
        let mut queue = vec![self.start];
        seen[self.start] = true;
        while let Some(q) = queue.pop() {
            if self.accept[q] {
                return false;
            }
            for &(_, to) in &self.trans[q] {
                if !seen[to] {
                    seen[to] = true;
                    queue.push(to);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type S = u32; // test symbol type

    fn steps(spec: &[(bool, Option<S>)]) -> Vec<Step<S>> {
        spec.iter()
            .map(|&(gap, l)| Step {
                gap,
                label: match l {
                    Some(s) => Label::Sym(s),
                    None => Label::Any,
                },
            })
            .collect()
    }

    // Shorthand: pattern a/b//c over symbols 1,2,3.
    fn abc_desc() -> Nfa<S> {
        Nfa::from_steps(&steps(&[
            (false, Some(1)),
            (false, Some(2)),
            (true, Some(3)),
        ]))
    }

    #[test]
    fn accepts_exact_word() {
        let n = abc_desc();
        assert!(n.accepts(&[1, 2, 3]));
        assert!(n.accepts(&[1, 2, 9, 9, 3]));
        assert!(!n.accepts(&[1, 2]));
        assert!(!n.accepts(&[1, 3]));
        assert!(!n.accepts(&[2, 2, 3]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn wildcard_steps() {
        // * / * : any two symbols
        let n = Nfa::from_steps(&steps(&[(false, None), (false, None)]));
        assert!(n.accepts(&[7, 8]));
        assert!(!n.accepts(&[7]));
        assert!(!n.accepts(&[7, 8, 9]));
    }

    #[test]
    fn any_suffix() {
        let n = abc_desc().with_any_suffix();
        assert!(n.accepts(&[1, 2, 3]));
        assert!(n.accepts(&[1, 2, 3, 4, 5, 6]));
        assert!(!n.accepts(&[1, 2]));
    }

    #[test]
    fn intersection_basic() {
        // a/b//c vs a//c : both accept [1,2,3].
        let x = abc_desc();
        let y = Nfa::from_steps(&steps(&[(false, Some(1)), (true, Some(3))]));
        assert!(x.intersects(&y));
        assert!(y.intersects(&x));
    }

    #[test]
    fn intersection_empty_by_labels() {
        // a/b vs a/c
        let x = Nfa::from_steps(&steps(&[(false, Some(1)), (false, Some(2))]));
        let y = Nfa::from_steps(&steps(&[(false, Some(1)), (false, Some(3))]));
        assert!(!x.intersects(&y));
    }

    #[test]
    fn intersection_empty_by_length() {
        // a/b (length 2) vs a/b/c (length 3): no common word.
        let x = Nfa::from_steps(&steps(&[(false, Some(1)), (false, Some(2))]));
        let y = Nfa::from_steps(&steps(&[
            (false, Some(1)),
            (false, Some(2)),
            (false, Some(3)),
        ]));
        assert!(!x.intersects(&y));
        // …but with a (.)* suffix on x they share [1,2,3].
        assert!(x.clone().with_any_suffix().intersects(&y));
    }

    #[test]
    fn wildcard_vs_label() {
        // a/* vs a/b : intersect at [1,2].
        let x = Nfa::from_steps(&steps(&[(false, Some(1)), (false, None)]));
        let y = Nfa::from_steps(&steps(&[(false, Some(1)), (false, Some(2))]));
        assert!(x.intersects(&y));
    }

    #[test]
    fn fresh_letter_needed() {
        // * vs * : they intersect even though neither names a symbol —
        // the implicit fresh letter carries the word.
        let x = Nfa::from_steps(&steps(&[(false, None)]));
        let y = Nfa::from_steps(&steps(&[(false, None)]));
        assert!(x.intersects(&y));
    }

    #[test]
    fn descendant_gap_flexibility() {
        // a//b vs a/*/*/b : intersect (gap stretches to length 2).
        let x = Nfa::from_steps(&steps(&[(false, Some(1)), (true, Some(2))]));
        let y = Nfa::from_steps(&steps(&[
            (false, Some(1)),
            (false, None),
            (false, None),
            (false, Some(2)),
        ]));
        assert!(x.intersects(&y));
        // a/b vs a/*/b : no (length mismatch, no gaps).
        let p = Nfa::from_steps(&steps(&[(false, Some(1)), (false, Some(2))]));
        let q = Nfa::from_steps(&steps(&[(false, Some(1)), (false, None), (false, Some(2))]));
        assert!(!p.intersects(&q));
    }

    #[test]
    fn leading_gap_prefix() {
        // (.)* a — e.g. the spine of //a.
        let x = Nfa::from_steps(&steps(&[(true, Some(1))]));
        assert!(x.accepts(&[1]));
        assert!(x.accepts(&[5, 6, 1]));
        assert!(!x.accepts(&[1, 5]));
    }

    #[test]
    fn emptiness() {
        let x = abc_desc();
        assert!(!x.is_empty());
        // An automaton with an unreachable accept state.
        let dead: Nfa<S> = Nfa {
            trans: vec![vec![], vec![]],
            start: 0,
            accept: vec![false, true],
        };
        assert!(dead.is_empty());
    }

    #[test]
    fn empty_step_list_accepts_empty_word() {
        let n: Nfa<S> = Nfa::from_steps(&[]);
        assert!(n.accepts(&[]));
        assert!(!n.accepts(&[1]));
    }

    #[test]
    fn step_constructors() {
        let c = Step::child(Label::Sym(1u32));
        assert!(!c.gap);
        let d: Step<u32> = Step::descendant(Label::Any);
        assert!(d.gap);
    }

    #[test]
    fn intersection_agrees_with_brute_force() {
        // Cross-validate `intersects` against word enumeration over a
        // small alphabet, for a family of step specs.
        let specs: Vec<Vec<(bool, Option<S>)>> = vec![
            vec![(false, Some(1))],
            vec![(false, None)],
            vec![(false, Some(1)), (false, Some(2))],
            vec![(false, Some(1)), (true, Some(2))],
            vec![(false, None), (false, Some(2))],
            vec![(false, Some(1)), (false, None), (false, Some(2))],
            vec![(false, Some(2)), (true, Some(1))],
            vec![(true, Some(2))],
            vec![(false, Some(1)), (true, None)],
        ];
        // Words over {1, 2, 99} up to length 5; 99 plays "fresh letter".
        let alpha = [1u32, 2, 99];
        let mut words: Vec<Vec<S>> = vec![vec![]];
        let mut frontier: Vec<Vec<S>> = vec![vec![]];
        for _ in 0..5 {
            let mut next = Vec::new();
            for w in &frontier {
                for &a in &alpha {
                    let mut w2 = w.clone();
                    w2.push(a);
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            frontier = next;
        }
        for s1 in &specs {
            for s2 in &specs {
                let x = Nfa::from_steps(&steps(s1));
                let y = Nfa::from_steps(&steps(s2));
                let brute = words.iter().any(|w| x.accepts(w) && y.accepts(w));
                assert_eq!(
                    x.intersects(&y),
                    brute,
                    "spec {s1:?} vs {s2:?} (brute over ≤5-letter words)"
                );
            }
        }
    }
}
