//! Compiled linear-pattern automata: the §4 chain NFAs lowered **once**
//! into a compact, allocation-free representation.
//!
//! Every NFA built by [`Nfa::from_steps`](crate::Nfa::from_steps) has a
//! rigid shape: state `i` carries at most an `Any` self-loop (when step
//! `i` follows a `(.)*` gap) and one advance transition on step `i`'s
//! label. A [`Chain`] stores exactly that — one gap bit and one interned
//! symbol id per step — plus symbol-indexed bitmasks, so subset
//! simulation and product-emptiness run on `u64` words instead of
//! `HashSet<usize>` frontiers.
//!
//! The product construction exploits the chain shape completely: from a
//! product state `(i, j)` the only successors are
//!
//! * `(i+1, j+1)` when the two step labels are *compatible* (either is
//!   `(.)`, or they are the same symbol) — both sides consume the letter;
//! * `(i+1, j)` when side B idles on a gap self-loop while A advances;
//! * `(i, j+1)` when side A idles on a gap self-loop while B advances.
//!
//! All edges are monotone in `(i, j)`, so emptiness is one forward pass
//! over rows `i = 0..=m` with the reachable `j`-set of each row held in a
//! single `u64` (for B chains of ≤ 64 states; longer chains spill to
//! `Vec<u64>` rows). No move alphabet is ever materialized — the paper's
//! `Σ_{l,l'}`-plus-fresh-letter observation is folded into the
//! compatibility test: two steps share a letter iff one is `(.)` (the
//! fresh letter serves) or their symbols coincide.

use crate::{Label, Step};

/// Interned symbol id standing for the `(.)` wildcard. Real symbol ids
/// (e.g. `cxu_tree::Symbol::index`) never reach `u32::MAX` — the symbol
/// interner would exhaust memory long before.
pub const ANY_SYM: u32 = u32::MAX;

/// Do two step labels fire on a common letter? (`(.)` pairs with
/// anything — including the implicit fresh letter — and concrete symbols
/// only with themselves.)
#[inline]
fn compat(a: u32, b: u32) -> bool {
    a == ANY_SYM || b == ANY_SYM || a == b
}

/// Symbol-indexed transition masks over a chain's step indices: bit `i`
/// of `fires(a)` means step `i` consumes letter `a`.
#[derive(Clone, Debug)]
enum Table {
    /// Chains of ≤ 63 steps (≤ 64 states): plain `u64` masks.
    Small {
        /// Bit `i` ⇔ step `i` is preceded by a `(.)*` gap (state `i`
        /// has an `Any` self-loop).
        gap: u64,
        /// Bit `i` ⇔ step `i`'s label is `(.)`.
        any: u64,
        /// Sorted `(symbol, mask)` rows for the concrete symbols.
        syms: Vec<(u32, u64)>,
    },
    /// Spillover for longer chains: the same masks as word vectors.
    Large {
        gap: Vec<u64>,
        any: Vec<u64>,
        syms: Vec<(u32, Vec<u64>)>,
    },
}

/// A linear pattern's `ℛ(l)` chain, compiled once: gap bits + interned
/// symbol ids + symbol-indexed transition masks.
#[derive(Clone, Debug)]
pub struct Chain {
    gaps: Vec<bool>,
    labels: Vec<u32>,
    table: Table,
}

/// Words needed for one bit per item.
fn words_for(bits: usize) -> usize {
    bits.div_ceil(64).max(1)
}

#[inline]
fn get_bit(v: &[u64], i: usize) -> bool {
    v[i / 64] & (1u64 << (i % 64)) != 0
}

impl Chain {
    /// Compiles a step sequence, interning symbols through `sym_id`.
    /// `sym_id` must be injective and never return [`ANY_SYM`].
    pub fn from_steps<T: Copy>(steps: &[Step<T>], mut sym_id: impl FnMut(T) -> u32) -> Chain {
        let ids: Vec<(bool, u32)> = steps
            .iter()
            .map(|s| {
                (
                    s.gap,
                    match s.label {
                        Label::Sym(t) => sym_id(t),
                        Label::Any => ANY_SYM,
                    },
                )
            })
            .collect();
        Chain::from_ids(&ids)
    }

    /// Compiles from `(gap, symbol-id)` pairs directly.
    pub fn from_ids(steps: &[(bool, u32)]) -> Chain {
        let gaps: Vec<bool> = steps.iter().map(|&(g, _)| g).collect();
        let labels: Vec<u32> = steps.iter().map(|&(_, l)| l).collect();
        let n = steps.len();
        let table = if n <= 63 {
            let mut gap = 0u64;
            let mut any = 0u64;
            let mut syms: Vec<(u32, u64)> = Vec::new();
            for (i, &(g, l)) in steps.iter().enumerate() {
                if g {
                    gap |= 1 << i;
                }
                if l == ANY_SYM {
                    any |= 1 << i;
                } else {
                    match syms.binary_search_by_key(&l, |&(s, _)| s) {
                        Ok(p) => syms[p].1 |= 1 << i,
                        Err(p) => syms.insert(p, (l, 1 << i)),
                    }
                }
            }
            Table::Small { gap, any, syms }
        } else {
            let w = words_for(n);
            let mut gap = vec![0u64; w];
            let mut any = vec![0u64; w];
            let mut syms: Vec<(u32, Vec<u64>)> = Vec::new();
            for (i, &(g, l)) in steps.iter().enumerate() {
                let (word, bit) = (i / 64, 1u64 << (i % 64));
                if g {
                    gap[word] |= bit;
                }
                if l == ANY_SYM {
                    any[word] |= bit;
                } else {
                    match syms.binary_search_by_key(&l, |(s, _)| *s) {
                        Ok(p) => syms[p].1[word] |= bit,
                        Err(p) => {
                            let mut m = vec![0u64; w];
                            m[word] |= bit;
                            syms.insert(p, (l, m));
                        }
                    }
                }
            }
            Table::Large { gap, any, syms }
        };
        Chain {
            gaps,
            labels,
            table,
        }
    }

    /// Number of steps (the automaton has `len() + 1` states).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Is this the empty chain (accepting only the empty word)?
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Is step `i` preceded by a `(.)*` gap? (Equivalently: does the
    /// pattern reach node `i+1` via a descendant edge?)
    pub fn gap(&self, i: usize) -> bool {
        self.gaps[i]
    }

    /// Step `i`'s interned symbol id ([`ANY_SYM`] for `(.)`).
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Mask of all step indices (small tables only).
    #[inline]
    fn all_small(&self) -> u64 {
        match self.len() {
            0 => 0,
            n => !0u64 >> (64 - n),
        }
    }

    #[inline]
    fn gap_small(&self) -> u64 {
        match &self.table {
            Table::Small { gap, .. } => *gap,
            Table::Large { .. } => unreachable!("small accessor on large table"),
        }
    }

    /// Mask of steps consuming concrete letter `a` (small tables only).
    #[inline]
    fn fires_small(&self, a: u32) -> u64 {
        debug_assert_ne!(a, ANY_SYM, "words carry concrete symbols only");
        match &self.table {
            Table::Small { any, syms, .. } => {
                any | match syms.binary_search_by_key(&a, |&(s, _)| s) {
                    Ok(p) => syms[p].1,
                    Err(_) => 0,
                }
            }
            Table::Large { .. } => unreachable!("small accessor on large table"),
        }
    }

    /// Mask of B-steps whose label is compatible with step label `la`
    /// of the other side (small tables only): the diagonal-edge mask of
    /// the product construction.
    #[inline]
    fn diag_small(&self, la: u32) -> u64 {
        if la == ANY_SYM {
            self.all_small()
        } else {
            self.fires_small(la)
        }
    }

    /// Does the chain accept `word` (a sequence of interned symbol ids)?
    /// Bit-parallel subset simulation: zero allocation for chains of
    /// ≤ 64 states.
    pub fn accepts(&self, word: &[u32]) -> bool {
        let n = self.len();
        if n <= 63 {
            let gap = self.gap_small();
            let mut cur: u64 = 1;
            for &a in word {
                cur = (cur & gap) | ((cur & self.fires_small(a)) << 1);
                if cur == 0 {
                    return false;
                }
            }
            cur & (1u64 << n) != 0
        } else {
            self.accepts_large(word)
        }
    }

    fn accepts_large(&self, word: &[u32]) -> bool {
        let (gap, any, syms) = match &self.table {
            Table::Large { gap, any, syms } => (gap, any, syms),
            Table::Small { .. } => unreachable!("large accessor on small table"),
        };
        let n = self.len();
        // State bits 0..=n: one more bit than the step masks cover.
        let w = words_for(n + 1);
        let mut cur = vec![0u64; w];
        let mut next = vec![0u64; w];
        cur[0] = 1;
        for &a in word {
            let sym = syms
                .binary_search_by_key(&a, |(s, _)| *s)
                .ok()
                .map(|p| &syms[p].1);
            let mut carry = 0u64;
            let mut alive = 0u64;
            for i in 0..w {
                let g = gap.get(i).copied().unwrap_or(0);
                let f = any.get(i).copied().unwrap_or(0)
                    | sym.and_then(|m| m.get(i).copied()).unwrap_or(0);
                let adv = cur[i] & f;
                next[i] = (cur[i] & g) | (adv << 1) | carry;
                carry = adv >> 63;
                alive |= next[i];
            }
            std::mem::swap(&mut cur, &mut next);
            if alive == 0 {
                return false;
            }
        }
        get_bit(&cur, n)
    }

    /// Is `L(self) ∩ L(other)` nonempty? (Strong matching.)
    ///
    /// Neither chain has trailing loops, so any common word's final
    /// letter must advance both sides into accept: nonempty iff the
    /// product state `(m−1, k−1)` is reachable and the two final step
    /// labels are compatible. Zero allocation when `other.len() ≤ 63`.
    pub fn intersects(&self, other: &Chain) -> bool {
        let (m, k) = (self.len(), other.len());
        if m == 0 || k == 0 {
            return m == 0 && k == 0;
        }
        if !compat(self.labels[m - 1], other.labels[k - 1]) {
            return false;
        }
        if k <= 63 {
            self.reach_small(other).penult & (1u64 << (k - 1)) != 0
        } else {
            get_bit(&self.reach_large(other).penult, k - 1)
        }
    }

    /// Is `L(self) ∩ L(other · (.)*)` nonempty? (Weak matching: `self`
    /// may keep consuming letters after `other` accepts.)
    pub fn intersects_weak(&self, other: &Chain) -> bool {
        let (m, k) = (self.len(), other.len());
        if m == 0 {
            // The empty chain accepts only ε, which `other·(.)*`
            // contains iff `other` is empty too.
            return k == 0;
        }
        if k <= 63 {
            self.reach_small(other).col_or & (1u64 << k) != 0
        } else {
            get_bit(&self.reach_large(other).col_or, k)
        }
    }

    /// Strong/weak answers for **every** prefix of `read` against `self`
    /// in one pass — the compiled form of the paper's all-edges-at-once
    /// dynamic program (the `PrefixMatcher`).
    ///
    /// `weak[j]` ⇔ `L(self) ∩ L(readⱼ · (.)*) ≠ ∅` and `strong[j]` ⇔
    /// `L(self) ∩ L(readⱼ) ≠ ∅`, where `readⱼ` is the length-`j` prefix
    /// chain, for `0 ≤ j ≤ read.len()`.
    pub fn prefix_match(&self, read: &Chain) -> PrefixMatch {
        let (m, k) = (self.len(), read.len());
        let mut weak = vec![false; k + 1];
        let mut strong = vec![false; k + 1];
        if m == 0 {
            // ε intersects readⱼ (·(.)* or not) iff j = 0.
            weak[0] = true;
            strong[0] = true;
            return PrefixMatch { weak, strong };
        }
        if k <= 63 {
            let r = self.reach_small(read);
            for (j, w) in weak.iter_mut().enumerate() {
                *w = r.col_or & (1u64 << j) != 0;
            }
            for (j, s) in strong.iter_mut().enumerate().skip(1) {
                *s = r.penult & (1u64 << (j - 1)) != 0
                    && compat(self.labels[m - 1], read.labels[j - 1]);
            }
        } else {
            let r = self.reach_large(read);
            for (j, w) in weak.iter_mut().enumerate() {
                *w = get_bit(&r.col_or, j);
            }
            for (j, s) in strong.iter_mut().enumerate().skip(1) {
                *s = get_bit(&r.penult, j - 1) && compat(self.labels[m - 1], read.labels[j - 1]);
            }
        }
        PrefixMatch { weak, strong }
    }

    /// Product reachability of `self` (A, rows `i = 0..=m`) × `other`
    /// (B, columns `j = 0..=k`), `k ≤ 63`. Returns the OR of all rows
    /// (weak answers per column) and row `m−1` (strong answers). Runs
    /// entirely in registers.
    #[inline]
    fn reach_small(&self, other: &Chain) -> Reach<u64> {
        let (m, k) = (self.len(), other.len());
        debug_assert!(m >= 1 && k <= 63);
        let colmask: u64 = !0u64 >> (63 - k); // bits 0..=k
        let b_idle = other.gap_small(); // B states with an Any self-loop
        let mut row: u64 = 1; // start: (0, 0)
        let mut col_or: u64 = 0;
        let mut penult: u64 = 0;
        for i in 0..=m {
            if i < m && self.gaps[i] && row != 0 {
                // A idles on its gap while B advances: reachability
                // smears to every higher column of this row.
                row = (!0u64 << row.trailing_zeros()) & colmask;
            }
            col_or |= row;
            if i + 1 == m {
                penult = row;
            }
            if i == m || row == 0 {
                break;
            }
            // Diagonal (both advance on a compatible letter) and
            // vertical (A advances while B idles on a gap) edges feed
            // row i+1.
            row = ((row & other.diag_small(self.labels[i])) << 1) | (row & b_idle);
        }
        Reach { col_or, penult }
    }

    /// The same forward pass with `Vec<u64>` rows, for B chains wider
    /// than 63 steps.
    fn reach_large(&self, other: &Chain) -> Reach<Vec<u64>> {
        let (m, k) = (self.len(), other.len());
        debug_assert!(m >= 1 && k >= 64);
        let (b_gap, b_any, b_syms) = match &other.table {
            Table::Large { gap, any, syms } => (gap, any, syms),
            Table::Small { .. } => unreachable!("large reach needs a large B table"),
        };
        let w = words_for(k + 1);
        let mut row = vec![0u64; w];
        row[0] = 1;
        let mut col_or = vec![0u64; w];
        let mut penult = vec![0u64; w];
        let mut diag = vec![0u64; w];
        for i in 0..=m {
            if i < m && self.gaps[i] {
                smear_up(&mut row, k);
            }
            for (c, r) in col_or.iter_mut().zip(&row) {
                *c |= r;
            }
            if i + 1 == m {
                penult.copy_from_slice(&row);
            }
            if i == m || row.iter().all(|&x| x == 0) {
                break;
            }
            // Diagonal mask for A's step label against every B step.
            let la = self.labels[i];
            if la == ANY_SYM {
                for (word, d) in diag.iter_mut().enumerate() {
                    *d = match ((word + 1) * 64).cmp(&k) {
                        std::cmp::Ordering::Greater if word * 64 >= k => 0,
                        std::cmp::Ordering::Greater => !0u64 >> (64 - (k % 64)),
                        _ => !0,
                    };
                }
            } else {
                let sym = b_syms
                    .binary_search_by_key(&la, |(s, _)| *s)
                    .ok()
                    .map(|p| &b_syms[p].1);
                for (word, d) in diag.iter_mut().enumerate() {
                    *d = b_any.get(word).copied().unwrap_or(0)
                        | sym.and_then(|s| s.get(word).copied()).unwrap_or(0);
                }
            }
            let mut carry = 0u64;
            for word in 0..w {
                let adv = row[word] & diag[word];
                row[word] =
                    (adv << 1) | carry | (row[word] & b_gap.get(word).copied().unwrap_or(0));
                carry = adv >> 63;
            }
        }
        Reach { col_or, penult }
    }

    /// The pre-filter summary: facts holding for **every** word of
    /// `L(ℛ(l))`, cheap to intersect per pair at schedule time.
    pub fn summary(&self) -> Summary {
        let min_depth = self.len() as u32;
        let max_depth = if self.gaps.iter().any(|&g| g) {
            None
        } else {
            Some(min_depth)
        };
        let mut required: Vec<u32> = self
            .labels
            .iter()
            .copied()
            .filter(|&l| l != ANY_SYM)
            .collect();
        required.sort_unstable();
        required.dedup();
        let p = self.gaps.iter().position(|&g| g).unwrap_or(self.len());
        let rigid = self.labels[..p].to_vec();
        Summary {
            min_depth,
            max_depth,
            required,
            rigid,
        }
    }
}

/// Reachability extract: per-column OR over all rows (weak answers) and
/// row `m−1` (strong answers pair it with the final-step compatibility).
struct Reach<R> {
    col_or: R,
    penult: R,
}

/// Sets every bit above the lowest set bit, trimmed to columns `0..=k` —
/// the multi-word in-row gap smear.
fn smear_up(row: &mut [u64], k: usize) {
    let Some(first) = row.iter().position(|&x| x != 0) else {
        return;
    };
    row[first] |= !0u64 << row[first].trailing_zeros();
    for x in row.iter_mut().skip(first + 1) {
        *x = !0;
    }
    let (w, rem) = (k / 64, k % 64);
    for (i, x) in row.iter_mut().enumerate() {
        if i > w {
            *x = 0;
        } else if i == w {
            *x &= !0u64 >> (63 - rem);
        }
    }
}

/// Per-prefix strong/weak matching results (see [`Chain::prefix_match`]).
pub struct PrefixMatch {
    /// `weak[j]` for prefix lengths `0..=read.len()`.
    pub weak: Vec<bool>,
    /// `strong[j]` for prefix lengths `0..=read.len()`.
    pub strong: Vec<bool>,
}

/// Facts true of every word in a chain's language — the batch
/// pre-filter's per-operation digest, computed once at intern time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Every accepted word has at least this many letters.
    pub min_depth: u32,
    /// Upper bound on word length; `None` when a `(.)*` gap makes the
    /// language unbounded in depth.
    pub max_depth: Option<u32>,
    /// Concrete symbols present in **every** accepted word (the chain's
    /// non-wildcard step labels), sorted and deduplicated.
    pub required: Vec<u32>,
    /// The *rigid prefix*: step labels before the first gap. Position
    /// `t` of every accepted word is exactly `rigid[t]` (or free when
    /// `rigid[t]` is [`ANY_SYM`]).
    pub rigid: Vec<u32>,
}

impl Summary {
    /// Is the chain gap-free (every accepted word has exactly
    /// `min_depth` letters)?
    pub fn is_rigid(&self) -> bool {
        self.max_depth.is_some()
    }
}

/// Do the two rigid prefixes *clash* — some position demanding two
/// different concrete symbols? A clash at position `t` empties every
/// common language the §4 detectors consult for these two chains (all
/// prefix pairs covering position `t`, strong or weak), which is the
/// pre-filter's soundness core: see `DESIGN.md` § Performance.
pub fn rigid_clash(a: &Summary, b: &Summary) -> bool {
    a.rigid
        .iter()
        .zip(&b.rigid)
        .any(|(&x, &y)| x != ANY_SYM && y != ANY_SYM && x != y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nfa;

    fn chain(spec: &[(bool, Option<u32>)]) -> Chain {
        let ids: Vec<(bool, u32)> = spec
            .iter()
            .map(|&(g, l)| (g, l.unwrap_or(ANY_SYM)))
            .collect();
        Chain::from_ids(&ids)
    }

    fn nfa(spec: &[(bool, Option<u32>)]) -> Nfa<u32> {
        let steps: Vec<Step<u32>> = spec
            .iter()
            .map(|&(g, l)| Step {
                gap: g,
                label: match l {
                    Some(s) => Label::Sym(s),
                    None => Label::Any,
                },
            })
            .collect();
        Nfa::from_steps(&steps)
    }

    #[test]
    fn accepts_matches_nfa() {
        let spec = [(false, Some(1)), (false, Some(2)), (true, Some(3))];
        let c = chain(&spec);
        let n = nfa(&spec);
        for w in [
            vec![1u32, 2, 3],
            vec![1, 2, 9, 9, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 2, 3],
            vec![],
        ] {
            assert_eq!(c.accepts(&w), n.accepts(&w), "{w:?}");
        }
    }

    #[test]
    fn intersects_basic() {
        let x = chain(&[(false, Some(1)), (false, Some(2)), (true, Some(3))]);
        let y = chain(&[(false, Some(1)), (true, Some(3))]);
        assert!(x.intersects(&y));
        assert!(y.intersects(&x));
        let a = chain(&[(false, Some(1)), (false, Some(2))]);
        let b = chain(&[(false, Some(1)), (false, Some(3))]);
        assert!(!a.intersects(&b));
        // Wildcard-only chains intersect via the fresh letter.
        let s = chain(&[(false, None)]);
        assert!(s.intersects(&chain(&[(false, None)])));
    }

    #[test]
    fn weak_is_one_sided() {
        let abc = chain(&[(false, Some(1)), (false, Some(2)), (false, Some(3))]);
        let ab = chain(&[(false, Some(1)), (false, Some(2))]);
        assert!(abc.intersects_weak(&ab));
        assert!(!ab.intersects_weak(&abc));
        assert!(ab.intersects_weak(&ab));
    }

    #[test]
    fn empty_chain_edge_cases() {
        let e = Chain::from_ids(&[]);
        let a = chain(&[(false, Some(1))]);
        assert!(e.accepts(&[]));
        assert!(!e.accepts(&[1]));
        assert!(e.intersects(&e));
        assert!(!e.intersects(&a));
        assert!(!a.intersects(&e));
        assert!(e.intersects_weak(&e));
        assert!(!e.intersects_weak(&a));
        // a ∩ ε·(.)* : the empty prefix is consumed at the start; `a`
        // completes below it.
        assert!(a.intersects_weak(&e));
    }

    #[test]
    fn summary_and_rigid_clash() {
        let c = chain(&[(false, Some(1)), (false, None), (true, Some(3))]);
        let s = c.summary();
        assert_eq!(s.min_depth, 3);
        assert_eq!(s.max_depth, None);
        assert!(!s.is_rigid());
        assert_eq!(s.required, vec![1, 3]);
        assert_eq!(s.rigid, vec![1, ANY_SYM]);
        let d = chain(&[(false, Some(2)), (false, Some(5))]).summary();
        assert!(d.is_rigid());
        assert!(rigid_clash(&s, &d), "roots 1 vs 2");
        let w = chain(&[(false, None), (false, Some(5))]).summary();
        assert!(!rigid_clash(&s, &w), "wildcard root never clashes");
        let deep = chain(&[(false, Some(1)), (false, Some(7))]).summary();
        assert!(!rigid_clash(&s, &deep), "ANY at position 1 absorbs 7");
    }

    #[test]
    fn large_chain_spillover() {
        // 70 steps force the Vec<u64> path on both sides.
        let spec: Vec<(bool, Option<u32>)> = (0..70).map(|i| (i % 7 == 3, Some(i % 5))).collect();
        let c = chain(&spec);
        let n = nfa(&spec);
        let word: Vec<u32> = (0..70).map(|i| i % 5).collect();
        assert_eq!(c.accepts(&word), n.accepts(&word));
        assert!(c.intersects(&c), "satisfiable chain self-intersects");
        assert!(c.intersects_weak(&c));
        // Root symbol clash against a short chain (large A, small B) and
        // the flipped orientation (small A, large B).
        let clash = chain(&[(false, Some(9)), (true, Some(9))]);
        assert!(!c.intersects(&clash));
        assert!(!clash.intersects(&c));
        assert!(!clash.intersects_weak(&c));
    }

    #[test]
    fn prefix_match_columns() {
        // self = 1/(.)*·3 against read = 1/2/3/4.
        let u = chain(&[(false, Some(1)), (true, Some(3))]);
        let r = chain(&[
            (false, Some(1)),
            (false, Some(2)),
            (false, Some(3)),
            (false, Some(4)),
        ]);
        let pm = u.prefix_match(&r);
        // strong[j]: a common word must end on u's final 3, and u's words
        // have ≥ 2 letters — only the prefix 1/2/3 (j = 3) matches.
        let strong = [false, false, true, false];
        for (j, &want) in strong.iter().enumerate() {
            assert_eq!(pm.strong[j + 1], want, "strong[{}]", j + 1);
        }
        // weak[j]: u's output can always land at or below the prefix
        // endpoint — e.g. 1·2·3·4·3 completes u below prefix 1/2/3/4.
        for j in 1..=4 {
            assert!(pm.weak[j], "weak[{j}]");
        }
    }
}
