//! Property tests: the product intersection agrees with brute-force word
//! search, and language operations behave algebraically.

// Gated: needs the external `proptest` crate (see the workspace
// Cargo.toml note on hermetic builds).
#![cfg(feature = "proptest")]

use cxu_automata::{Label, Nfa, Step};
use proptest::prelude::*;

type S = u8;

fn arb_steps() -> impl Strategy<Value = Vec<Step<S>>> {
    proptest::collection::vec((proptest::bool::ANY, proptest::option::of(0u8..3)), 1..6).prop_map(
        |spec| {
            spec.into_iter()
                .map(|(gap, l)| Step {
                    gap,
                    label: match l {
                        Some(s) => Label::Sym(s),
                        None => Label::Any,
                    },
                })
                .collect()
        },
    )
}

/// All words over {0,1,2,9} up to length `max` (9 = fresh letter).
fn words(max: usize) -> Vec<Vec<S>> {
    let alpha = [0u8, 1, 2, 9];
    let mut all: Vec<Vec<S>> = vec![vec![]];
    let mut frontier: Vec<Vec<S>> = vec![vec![]];
    for _ in 0..max {
        let mut next = Vec::new();
        for w in &frontier {
            for &a in &alpha {
                let mut w2 = w.clone();
                w2.push(a);
                next.push(w2);
            }
        }
        all.extend(next.iter().cloned());
        frontier = next;
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Product intersection ⇔ brute-force common word (bounded: words up
    /// to the sum of both step counts suffice, since gaps only stretch —
    /// a shortest common word never needs more letters than steps plus
    /// the other side's steps).
    #[test]
    fn intersects_vs_brute(a in arb_steps(), b in arb_steps()) {
        let x = Nfa::from_steps(&a);
        let y = Nfa::from_steps(&b);
        let bound = a.len() + b.len();
        let brute = words(bound).iter().any(|w| x.accepts(w) && y.accepts(w));
        prop_assert_eq!(x.intersects(&y), brute, "{:?} vs {:?}", a, b);
    }

    /// Intersection is symmetric.
    #[test]
    fn intersects_symmetric(a in arb_steps(), b in arb_steps()) {
        let x = Nfa::from_steps(&a);
        let y = Nfa::from_steps(&b);
        prop_assert_eq!(x.intersects(&y), y.intersects(&x));
    }

    /// Every step automaton accepts its own canonical word (each step's
    /// label, gaps contributing nothing).
    #[test]
    fn accepts_own_word(a in arb_steps()) {
        let x = Nfa::from_steps(&a);
        let word: Vec<S> = a.iter().map(|s| match s.label {
            Label::Sym(v) => v,
            Label::Any => 9,
        }).collect();
        prop_assert!(x.accepts(&word));
        prop_assert!(x.intersects(&x), "self-intersection");
    }

    /// The (.)* suffix only grows the language.
    #[test]
    fn any_suffix_monotone(a in arb_steps(), b in arb_steps()) {
        let x = Nfa::from_steps(&a);
        let y = Nfa::from_steps(&b);
        if x.intersects(&y) {
            prop_assert!(x.intersects(&y.clone().with_any_suffix()));
            prop_assert!(x.clone().with_any_suffix().intersects(&y));
        }
    }
}
