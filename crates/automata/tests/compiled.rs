//! Cross-validation: the compiled bitset [`Chain`] agrees with the
//! legacy explicit-state [`Nfa`] on acceptance, strong/weak
//! intersection, and the prefix-column matcher — over deterministic
//! seeded random patterns, including chains past the 63-step small-path
//! limit (exercising the `Vec<u64>` spillover).
//!
//! Always-on (no external dependency): a proptest variant of the same
//! properties lives in the feature-gated module at the bottom.

use cxu_automata::compiled::{Chain, ANY_SYM};
use cxu_automata::{Label, Nfa, Step};

/// SplitMix64 — deterministic, dependency-free PRNG for seeded cases.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const ALPHABET: u32 = 3;
/// A letter outside every generated pattern — the paper's fresh letter.
const FRESH: u32 = 9;

fn random_ids(rng: &mut SplitMix64, len: usize) -> Vec<(bool, u32)> {
    (0..len)
        .map(|_| {
            let gap = rng.below(2) == 0;
            let label = if rng.below(4) == 0 {
                ANY_SYM
            } else {
                rng.below(ALPHABET as u64) as u32
            };
            (gap, label)
        })
        .collect()
}

fn random_word(rng: &mut SplitMix64, max_len: usize) -> Vec<u32> {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| {
            if rng.below(5) == 0 {
                FRESH
            } else {
                rng.below(ALPHABET as u64) as u32
            }
        })
        .collect()
}

fn nfa_of(ids: &[(bool, u32)]) -> Nfa<u32> {
    let steps: Vec<Step<u32>> = ids
        .iter()
        .map(|&(gap, l)| Step {
            gap,
            label: if l == ANY_SYM {
                Label::Any
            } else {
                Label::Sym(l)
            },
        })
        .collect();
    Nfa::from_steps(&steps)
}

fn check_pair(ids_a: &[(bool, u32)], ids_b: &[(bool, u32)]) {
    let (ca, cb) = (Chain::from_ids(ids_a), Chain::from_ids(ids_b));
    let (na, nb) = (nfa_of(ids_a), nfa_of(ids_b));
    assert_eq!(
        ca.intersects(&cb),
        na.intersects(&nb),
        "strong: {ids_a:?} vs {ids_b:?}"
    );
    assert_eq!(
        ca.intersects_weak(&cb),
        na.intersects(&nb.clone().with_any_suffix()),
        "weak: {ids_a:?} vs {ids_b:?}"
    );
    assert_eq!(
        cb.intersects_weak(&ca),
        nb.intersects(&na.with_any_suffix()),
        "weak flipped: {ids_b:?} vs {ids_a:?}"
    );
}

#[test]
fn accepts_agrees_with_nfa_seeded() {
    let mut rng = SplitMix64(0xC0FF_EE00);
    for _ in 0..400 {
        let len = 1 + rng.below(8) as usize;
        let ids = random_ids(&mut rng, len);
        let (chain, nfa) = (Chain::from_ids(&ids), nfa_of(&ids));
        for _ in 0..40 {
            let w = random_word(&mut rng, ids.len() + 3);
            assert_eq!(
                chain.accepts(&w),
                nfa.accepts(&w),
                "accepts: {ids:?} on {w:?}"
            );
        }
    }
}

#[test]
fn intersections_agree_with_nfa_seeded() {
    let mut rng = SplitMix64(0xBA5E_BA11);
    for _ in 0..600 {
        let la = 1 + rng.below(7) as usize;
        let a = random_ids(&mut rng, la);
        let lb = 1 + rng.below(7) as usize;
        let b = random_ids(&mut rng, lb);
        check_pair(&a, &b);
    }
}

#[test]
fn empty_chains_agree_with_nfa() {
    let mut rng = SplitMix64(0x0);
    let empty: Vec<(bool, u32)> = Vec::new();
    check_pair(&empty, &empty);
    for _ in 0..50 {
        let lb = 1 + rng.below(6) as usize;
        let b = random_ids(&mut rng, lb);
        check_pair(&empty, &b);
    }
}

/// Chains past 63 steps leave the single-`u64` fast path; the `Vec<u64>`
/// spillover must agree with the NFA the same way, including mixed
/// small-vs-large products.
#[test]
fn large_chain_spillover_agrees_with_nfa() {
    let mut rng = SplitMix64(0xD15C_0B16);
    for round in 0..12 {
        let big_len = 64 + rng.below(30) as usize;
        let a = random_ids(&mut rng, big_len);
        // Alternate the partner between small and large.
        let b_len = if round % 2 == 0 {
            1 + rng.below(6) as usize
        } else {
            64 + rng.below(20) as usize
        };
        let b = random_ids(&mut rng, b_len);
        check_pair(&a, &b);

        let (chain, nfa) = (Chain::from_ids(&a), nfa_of(&a));
        for _ in 0..10 {
            let w = random_word(&mut rng, big_len + 4);
            assert_eq!(chain.accepts(&w), nfa.accepts(&w), "large accepts");
        }
    }
}

/// `prefix_match` columns equal one NFA product per read prefix:
/// `weak[j] ⇔ L(u) ∩ L(r[..j]·(.)*) ≠ ∅` and
/// `strong[j] ⇔ L(u) ∩ L(r[..j]) ≠ ∅`.
#[test]
fn prefix_match_agrees_with_per_prefix_nfa() {
    let mut rng = SplitMix64(0xFACE_FEED);
    for _ in 0..200 {
        let lu = 1 + rng.below(6) as usize;
        let u = random_ids(&mut rng, lu);
        let lr = 1 + rng.below(6) as usize;
        let r = random_ids(&mut rng, lr);
        let pm = Chain::from_ids(&u).prefix_match(&Chain::from_ids(&r));
        let nu = nfa_of(&u);
        for j in 0..=r.len() {
            let prefix = nfa_of(&r[..j]);
            assert_eq!(
                pm.strong[j],
                nu.intersects(&prefix),
                "strong[{j}]: {u:?} vs {r:?}"
            );
            assert_eq!(
                pm.weak[j],
                nu.intersects(&prefix.with_any_suffix()),
                "weak[{j}]: {u:?} vs {r:?}"
            );
        }
    }
}

// Gated: needs the external `proptest` crate (see the workspace
// Cargo.toml note on hermetic builds).
#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_ids(max: usize) -> impl Strategy<Value = Vec<(bool, u32)>> {
        proptest::collection::vec((proptest::bool::ANY, proptest::option::of(0u32..3)), 0..max)
            .prop_map(|spec| {
                spec.into_iter()
                    .map(|(gap, l)| (gap, l.unwrap_or(ANY_SYM)))
                    .collect()
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn compiled_matches_nfa(a in arb_ids(8), b in arb_ids(8)) {
            check_pair(&a, &b);
        }

        #[test]
        fn compiled_matches_nfa_spillover(a in arb_ids(80), b in arb_ids(80)) {
            check_pair(&a, &b);
        }
    }
}
