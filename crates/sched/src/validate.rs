//! Observational validation: executing a schedule must be isomorphic to
//! serial execution.
//!
//! The scheduler's contract is *semantic*, so it is checked through the
//! [`cxu_gen::program`] interpreter, not through the conflict theory
//! that produced it: run the program serially, run it in any
//! schedule-compatible order, and compare what every read observed (the
//! multiset of its result subtrees' values — exactly the paper's value
//! semantics) plus the final document up to isomorphism.

use crate::rounds::Schedule;
use cxu_gen::program::{observe, Program, Stmt};
use cxu_tree::{iso, Tree};

/// Executes the program's statements in `order` (a permutation of
/// `0..stmts.len()`) and returns, per read statement, `(original
/// statement index, observed values)`, sorted by statement index, plus
/// the final document.
pub fn observe_in_order(
    p: &Program,
    order: &[usize],
    doc: &Tree,
) -> (Vec<(usize, Vec<String>)>, Tree) {
    assert_eq!(order.len(), p.stmts.len(), "order must cover the program");
    let permuted = Program {
        stmts: order.iter().map(|&i| p.stmts[i].clone()).collect(),
    };
    let obs = observe(&permuted, doc);
    let mut final_doc = doc.clone();
    for stmt in &permuted.stmts {
        if let Stmt::Update(u) = stmt {
            u.apply(&mut final_doc);
        }
    }
    let mut tagged: Vec<(usize, Vec<String>)> = order
        .iter()
        .filter(|&&i| matches!(p.stmts[i], Stmt::Read(_)))
        .copied()
        .zip(obs)
        .collect();
    tagged.sort_by_key(|&(i, _)| i);
    (tagged, final_doc)
}

/// Is executing the schedule (rounds in sequence, `intra` giving each
/// round's internal order) observationally equivalent to serial
/// execution on `doc`? Equivalent means: every read observes the same
/// values, and the final documents are isomorphic.
pub fn schedule_preserves_observation(
    p: &Program,
    s: &Schedule,
    intra: &[Vec<usize>],
    doc: &Tree,
) -> bool {
    let serial: Vec<usize> = (0..p.stmts.len()).collect();
    let (obs_serial, doc_serial) = observe_in_order(p, &serial, doc);
    let (obs_sched, doc_sched) = observe_in_order(p, &s.order_with(intra), doc);
    obs_serial == obs_sched && iso::isomorphic(&doc_serial, &doc_sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_gen::parse::parse_program;
    use cxu_tree::text;

    #[test]
    fn observation_is_indexed_by_statement() {
        let p = parse_program("y = read $x//A; insert $x/B, C; z = read $x//C").unwrap();
        let doc = text::parse("x(B A)").unwrap();
        let serial: Vec<usize> = (0..3).collect();
        let (obs, _) = observe_in_order(&p, &serial, &doc);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0], (0, vec!["A".to_string()]));
        assert_eq!(obs[1].0, 2);
        assert_eq!(obs[1].1, vec!["C".to_string()]);
    }

    #[test]
    fn illegal_reorder_is_caught() {
        // Swapping the conflicting insert below the read changes what
        // the read sees — a schedule that did that must be rejected.
        let p = parse_program("insert $x/B, C; z = read $x//C").unwrap();
        let doc = text::parse("x(B)").unwrap();
        let bad = Schedule {
            rounds: vec![vec![0, 1]],
        };
        // Round order [1, 0] runs the read first.
        assert!(!schedule_preserves_observation(
            &p,
            &bad,
            &[vec![1, 0]],
            &doc
        ));
        // The compatible order [0, 1] agrees with serial.
        assert!(schedule_preserves_observation(
            &p,
            &bad,
            &[vec![0, 1]],
            &doc
        ));
    }

    #[test]
    fn legal_reorder_passes() {
        let p = parse_program("insert $x/B, C; z = read $x//D").unwrap();
        let doc = text::parse("x(B D(D))").unwrap();
        let s = Schedule {
            rounds: vec![vec![0, 1]],
        };
        for intra in [vec![vec![0, 1]], vec![vec![1, 0]]] {
            assert!(schedule_preserves_observation(&p, &s, &intra, &doc));
        }
    }
}
