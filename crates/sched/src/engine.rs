//! The batch analysis engine: dedup through the interner, serve repeats
//! from the verdict cache, fan the unique pairs out over worker
//! threads, and assemble the conflict graph, schedule, and stats.

use crate::graph::{ConflictGraph, Edge};
use crate::intern::{Interner, OpInfo, OpKey, PairKey};
use crate::op::{ops_of_program, Op};
use crate::pairwise::{analyze_pair_info, prefilter_no_conflict, Detector, Verdict};
use crate::rounds::{schedule, Schedule};
use crate::{SchedConfig, SchedStats};
use cxu_gen::program::Program;
use cxu_runtime::{failpoints, CancelToken, Deadline};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Bumps the `sched.route.*` counter matching the deciding detector.
/// One increment per *analyzed* pair (cache hits never re-enter a
/// detector, so summing these counters equals `pairs_analyzed` summed
/// over batches — the invariant `tests/obs_validation.rs` checks).
fn record_route(v: Verdict) {
    match v.detector {
        Detector::Trivial => cxu_obs::counter!("sched.route.trivial").inc(),
        Detector::PrefilterNoConflict => {
            cxu_obs::counter!("sched.route.prefilter_no_conflict").inc()
        }
        Detector::PtimeLinearRead => cxu_obs::counter!("sched.route.ptime_linear_read").inc(),
        Detector::PtimeLinearUpdates => cxu_obs::counter!("sched.route.ptime_linear_updates").inc(),
        Detector::WitnessSearch => cxu_obs::counter!("sched.route.witness_search").inc(),
        Detector::ConservativeUndecided => {
            cxu_obs::counter!("sched.route.conservative_undecided").inc()
        }
        Detector::ConservativeBudget => cxu_obs::counter!("sched.route.conservative_budget").inc(),
        Detector::ConservativeDeadline => {
            cxu_obs::counter!("sched.route.conservative_deadline").inc()
        }
        Detector::ConservativePanic => cxu_obs::counter!("sched.route.conservative_panic").inc(),
    }
}

/// Decides one pair under the engine's robustness envelope: a fresh
/// per-pair [`Deadline`] (sharing the batch's cancel token, if any), the
/// `sched::pair` fault-injection site, and — when
/// [`SchedConfig::catch_panics`] is set — a `catch_unwind` guard that
/// converts detector panics into conservative-conflict verdicts.
fn decide_pair(
    a: &Op,
    ia: Option<&OpInfo>,
    b: &Op,
    ib: Option<&OpInfo>,
    cfg: &SchedConfig,
    cancel: Option<&CancelToken>,
) -> Verdict {
    let mut deadline = match cfg.pair_deadline {
        Some(slice) => Deadline::after(slice),
        None => Deadline::never(),
    };
    if let Some(token) = cancel {
        deadline = deadline.with_token(token);
    }
    decide_pair_at(a, ia, b, ib, cfg, &deadline)
}

/// [`decide_pair`] against a caller-supplied deadline instead of a fresh
/// per-pair slice — the serving path hands in the *request* deadline so
/// one slow pair degrades at exactly the moment the client stops
/// waiting.
fn decide_pair_at(
    a: &Op,
    ia: Option<&OpInfo>,
    b: &Op,
    ib: Option<&OpInfo>,
    cfg: &SchedConfig,
    deadline: &Deadline,
) -> Verdict {
    let t0 = std::time::Instant::now();
    let run = || {
        if failpoints::fire("sched::pair") {
            return Verdict::conservative(Detector::ConservativeBudget);
        }
        analyze_pair_info(a, ia, b, ib, cfg, deadline)
    };
    let verdict = if !cfg.catch_panics {
        run()
    } else {
        // `Op` and `SchedConfig` are plain data (no interior mutability), and
        // the deadline's poll counter is at worst stale after an unwind, so
        // observing them across the catch is safe.
        catch_unwind(AssertUnwindSafe(run))
            .unwrap_or_else(|_| Verdict::conservative(Detector::ConservativePanic))
    };
    record_route(verdict);
    cxu_obs::histogram!("sched.pair_ns").record_since(t0);
    if cxu_obs::trace::enabled() {
        cxu_obs::trace::event(
            "sched.pair",
            &[
                ("route", verdict.detector.name().into()),
                ("conflict", verdict.conflict.into()),
            ],
        );
    }
    verdict
}

/// Debug-only oracle behind the pre-filter's `debug_assert!`: re-derives
/// a skipped pair's verdict with the full detectors and returns true iff
/// they agree the pair cannot conflict. Deliberately calls the
/// *uninstrumented* `read_delete_conflict` / `read_insert_conflict`
/// entry points — routing through the instrumented `read_update_conflict`
/// wrapper here would inflate the `core.detect.linear` counters that
/// `tests/obs_validation.rs` ties to the scheduler's route mix. For
/// update–update pairs this mirrors `commutativity_deadline`'s cross
/// checks: each update read back as a pattern under `Node` semantics
/// against the other update; both silent ⇒ commute.
fn prefilter_cross_check(a: &Op, b: &Op, sem: cxu_ops::Semantics) -> bool {
    use cxu_core::detect::{read_delete_conflict, read_insert_conflict};
    use cxu_ops::{Read, Semantics, Update};
    fn silent(r: &Read, u: &Update, sem: Semantics) -> bool {
        let fired = match u {
            Update::Insert(i) => read_insert_conflict(r, i, sem),
            Update::Delete(d) => read_delete_conflict(r, d, sem),
        };
        matches!(fired, Ok(false))
    }
    match (a, b) {
        (Op::Read(_), Op::Read(_)) => true,
        (Op::Read(r), Op::Update(u)) | (Op::Update(u), Op::Read(r)) => silent(r, u, sem),
        (Op::Update(u1), Op::Update(u2)) => {
            let r1 = Read::new(u1.pattern().clone());
            let r2 = Read::new(u2.pattern().clone());
            silent(&r1, u2, Semantics::Node) && silent(&r2, u1, Semantics::Node)
        }
    }
}

/// The outcome of a single-pair check ([`Scheduler::check_pair`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairDecision {
    /// The verdict (conflict flag + deciding detector).
    pub verdict: Verdict,
    /// Whether the verdict was served from the memo cache rather than
    /// computed by a detector on this call. Trivial pairs report
    /// `false`: they never touch the cache in either direction.
    pub cached: bool,
}

/// The outcome of a transaction-pair analysis
/// ([`Scheduler::analyze_txn_pair`]): do two transaction programs
/// conflict?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnPairReport {
    /// Whether the transactions conflict — any same-document cross pair
    /// conflicted, or could not be *proved* not to.
    pub conflict: bool,
    /// Pair decisions consulted (the scan early-exits on conflict).
    pub checked: usize,
    /// True when the deciding verdict was a conservative degradation
    /// rather than a genuine conflict: retrying may succeed.
    pub conservative: bool,
}

/// The outcome of [`Scheduler::lookup_pair`]: either an answer that was
/// available under the brief scheduler lock (trivial shape or memo-cache
/// hit), or a detached [`PairTask`] the caller runs with **no** scheduler
/// lock held and then feeds back through [`Scheduler::commit_pair`].
///
/// This split is what makes the scheduler shardable: a sharded server
/// keeps lock hold times bounded by the lookup (interning + one hash-map
/// probe), while detector invocations — including NP-side witness
/// searches — run outside any lock and may even run on a *different*
/// shard's worker (work stealing). The commit step serializes cache
/// writes back on the owning scheduler.
#[derive(Debug)]
pub enum PairLookup {
    /// Decided without running a detector.
    Ready(PairDecision),
    /// Cache miss: run the task lock-free, then commit its verdict.
    Miss(Box<PairTask>),
}

/// A detached unit of pair-deciding work produced by
/// [`Scheduler::lookup_pair`] on a cache miss. Owns clones of both
/// operations, their compiled [`OpInfo`]s, and the scheduler's config,
/// so it holds no borrow of the scheduler and can be executed on any
/// thread.
#[derive(Debug)]
pub struct PairTask {
    key: PairKey,
    a: Op,
    ia: Option<OpInfo>,
    b: Op,
    ib: Option<OpInfo>,
    cfg: SchedConfig,
}

impl PairTask {
    /// The normalized cache key this task's verdict commits under.
    pub fn key(&self) -> PairKey {
        self.key
    }

    /// Decides the pair under `deadline`: sound pre-filter first, then
    /// the full detector stack. Identical routing, metrics, and
    /// robustness envelope to the locked [`Scheduler::check_pair`] path;
    /// no scheduler state is touched.
    pub fn run(&self, deadline: &Deadline) -> Verdict {
        let t_pair = std::time::Instant::now();
        if prefilter_no_conflict(
            &self.a,
            self.ia.as_ref(),
            &self.b,
            self.ib.as_ref(),
            self.cfg.semantics,
        ) {
            let v = Verdict {
                conflict: false,
                detector: Detector::PrefilterNoConflict,
            };
            record_route(v);
            cxu_obs::histogram!("sched.pair_ns").record_since(t_pair);
            debug_assert!(
                prefilter_cross_check(&self.a, &self.b, self.cfg.semantics),
                "prefilter skipped a pair the full detector finds conflicting"
            );
            return v;
        }
        decide_pair_at(
            &self.a,
            self.ia.as_ref(),
            &self.b,
            self.ib.as_ref(),
            &self.cfg,
            deadline,
        )
    }
}

/// The result of analyzing one batch.
#[derive(Debug)]
pub struct BatchResult {
    /// The full conflict graph (every pair decided and annotated).
    pub graph: ConflictGraph,
    /// The conflict-free round schedule.
    pub schedule: Schedule,
    /// Counters for this batch.
    pub stats: SchedStats,
}

/// A stateful batch scheduler. The pattern interner and the pairwise
/// verdict cache persist across batches, so steady traffic with
/// recurring operation shapes converges to pure cache lookups.
pub struct Scheduler {
    cfg: SchedConfig,
    interner: Interner,
    cache: HashMap<PairKey, Verdict>,
}

impl Default for Scheduler {
    fn default() -> Scheduler {
        Scheduler::new(SchedConfig::default())
    }
}

impl Scheduler {
    /// A scheduler with the given configuration.
    pub fn new(cfg: SchedConfig) -> Scheduler {
        Scheduler {
            cfg,
            interner: Interner::new(),
            cache: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Replaces the configuration on a live scheduler.
    ///
    /// The pairwise verdict cache is keyed by operation-pair shape only,
    /// so any memoized verdict is implicitly *relative to the config it
    /// was computed under*: a `ConservativeBudget` verdict reached with
    /// `np_max_trees = 10` must not survive a raise to 200 000, or the
    /// pair stays frozen conservative forever. If any verdict-affecting
    /// field changes (`semantics`, `np_max_nodes`, `np_max_trees`,
    /// `trust_bounded_search`), the cache is flushed and the next batch
    /// re-analyzes; resource-envelope fields (`jobs`, `pair_deadline`,
    /// `catch_panics`) never reach a memoized verdict — deadline and
    /// panic degradations are excluded from the cache — so changing
    /// them keeps it.
    pub fn set_config(&mut self, cfg: SchedConfig) {
        let invalidates = self.cfg.semantics != cfg.semantics
            || self.cfg.np_max_nodes != cfg.np_max_nodes
            || self.cfg.np_max_trees != cfg.np_max_trees
            || self.cfg.trust_bounded_search != cfg.trust_bounded_search;
        if invalidates && !self.cache.is_empty() {
            cxu_obs::counter!("sched.cache.invalidate").add(self.cache.len() as u64);
            cxu_obs::trace::event(
                "sched.cache.invalidate",
                &[("dropped", self.cache.len().into())],
            );
            self.cache.clear();
        }
        self.cfg = cfg;
    }

    /// Number of memoized pairwise verdicts.
    pub fn cached_verdicts(&self) -> usize {
        self.cache.len()
    }

    /// Decides one pair under a caller-supplied deadline — the serving
    /// hot path (`check` route): no graph, no rounds, no thread fan-out,
    /// just interner + memo cache + one detector invocation.
    ///
    /// Cache discipline matches the batch path exactly: every
    /// non-trivial pair costs one `sched.cache.lookups`; hits are served
    /// from memory; misses run the sound pre-filter then the detectors;
    /// exact and budget verdicts are memoized while transient
    /// degradations (expired deadline, panic) are skipped
    /// (`sched.cache.skips`) so a later call retries them.
    pub fn check_pair(&mut self, a: &Op, b: &Op, deadline: &Deadline) -> PairDecision {
        match self.lookup_pair(a, b) {
            PairLookup::Ready(d) => d,
            PairLookup::Miss(task) => {
                let verdict = self.commit_pair(task.key(), task.run(deadline));
                PairDecision {
                    verdict,
                    cached: false,
                }
            }
        }
    }

    /// Lifts pairwise conflict detection to transaction programs: two
    /// transactions conflict iff **any** cross pair of same-document
    /// operations conflicts. Conservative verdicts count as conflicts —
    /// the same soundness discipline as the store's merge rung: a
    /// commutation the detectors could not *prove* must not admit an
    /// interleaving. Intra-transaction order never enters the question
    /// (a transaction is not compared against itself); each program's
    /// own order is preserved by whoever applies it.
    ///
    /// Operations are tagged with the document they touch; pairs on
    /// different documents are independent by construction and skipped
    /// without a detector. The rest go through [`Scheduler::check_pair`]
    /// — interner, memo cache, and prefilter included — so repeated
    /// transaction shapes stay warm. Early-exits on the first conflict.
    pub fn analyze_txn_pair(
        &mut self,
        a: &[(String, Op)],
        b: &[(String, Op)],
        deadline: &Deadline,
    ) -> TxnPairReport {
        let mut checked = 0usize;
        let mut out = TxnPairReport {
            conflict: false,
            checked: 0,
            conservative: false,
        };
        'scan: for (da, oa) in a {
            for (db, ob) in b {
                if da != db {
                    continue;
                }
                let d = self.check_pair(oa, ob, deadline);
                checked += 1;
                if d.verdict.conflict || d.verdict.detector.is_conservative() {
                    out.conflict = true;
                    out.conservative = d.verdict.detector.is_conservative();
                    break 'scan;
                }
            }
        }
        out.checked = checked;
        cxu_obs::counter!("txn.pair.checked").add(checked as u64);
        if out.conflict {
            cxu_obs::counter!("txn.pair.conflicts").inc();
        }
        out
    }

    /// The lock-friendly half of [`Scheduler::check_pair`]: interns both
    /// operations and probes the memo cache, returning either a ready
    /// decision or a detached [`PairTask`]. Callers holding this
    /// scheduler behind a mutex release it before running the task and
    /// re-take it only for [`Scheduler::commit_pair`], so a slow
    /// (NP-side) pair never head-of-line-blocks other lookups on the
    /// same shard.
    pub fn lookup_pair(&mut self, a: &Op, b: &Op) -> PairLookup {
        let ka = self.interner.intern_op(a);
        let kb = self.interner.intern_op(b);
        // Identical keys commute with themselves; reads never conflict.
        if ka == kb || (!a.is_update() && !b.is_update()) {
            return PairLookup::Ready(PairDecision {
                verdict: Verdict {
                    conflict: false,
                    detector: Detector::Trivial,
                },
                cached: false,
            });
        }
        let pk = PairKey::new(ka, kb);
        cxu_obs::counter!("sched.cache.lookups").inc();
        if let Some(&verdict) = self.cache.get(&pk) {
            cxu_obs::counter!("sched.cache.hits").inc();
            return PairLookup::Ready(PairDecision {
                verdict,
                cached: true,
            });
        }
        cxu_obs::counter!("sched.cache.misses").inc();
        PairLookup::Miss(Box::new(PairTask {
            key: pk,
            a: a.clone(),
            ia: self.interner.info(ka).cloned(),
            b: b.clone(),
            ib: self.interner.info(kb).cloned(),
            cfg: self.cfg,
        }))
    }

    /// Feeds a [`PairTask`]'s verdict back into the memo cache and
    /// returns the cache's authoritative verdict for the pair.
    ///
    /// First writer wins: if another worker (or a steal) already
    /// committed this key, the existing entry is kept and returned —
    /// the cache can never hold two conflicting verdicts for one pair,
    /// which is the soundness invariant the work-stealing path relies
    /// on. Transient degradations (expired deadline, detector panic)
    /// are never memoized (`sched.cache.skips`), matching
    /// [`Scheduler::check_pair`]'s discipline, so a later call retries
    /// them.
    pub fn commit_pair(&mut self, key: PairKey, verdict: Verdict) -> Verdict {
        if let Some(&existing) = self.cache.get(&key) {
            return existing;
        }
        if matches!(
            verdict.detector,
            Detector::ConservativeDeadline | Detector::ConservativePanic
        ) {
            cxu_obs::counter!("sched.cache.skips").inc();
        } else {
            self.cache.insert(key, verdict);
        }
        verdict
    }

    /// Analyzes a batch and schedules it into conflict-free rounds.
    pub fn run(&mut self, ops: &[Op]) -> BatchResult {
        self.run_inner(ops, None)
    }

    /// [`Scheduler::run`] with a cancellation token. Cancelling mid-batch
    /// makes the remaining undecided pairs degrade to conservative
    /// conflicts ([`Detector::ConservativeDeadline`]); the batch still
    /// completes with a valid (more serial) schedule.
    pub fn run_with_cancel(&mut self, ops: &[Op], cancel: &CancelToken) -> BatchResult {
        self.run_inner(ops, Some(cancel))
    }

    fn run_inner(&mut self, ops: &[Op], cancel: Option<&CancelToken>) -> BatchResult {
        let (graph, mut stats) = self.analyze_inner(ops, cancel);
        let t0 = std::time::Instant::now();
        let round_span = cxu_obs::span("sched.rounds");
        let sched = schedule(&graph);
        drop(round_span);
        cxu_obs::histogram!("sched.rounds_ns").record_since(t0);
        stats.rounds = sched.len();
        cxu_obs::counter!("sched.batches").inc();
        if cxu_obs::trace::enabled() {
            cxu_obs::trace::event(
                "sched.batch",
                &[
                    ("ops", stats.ops.into()),
                    ("pairs_total", stats.pairs_total.into()),
                    ("pairs_analyzed", stats.pairs_analyzed.into()),
                    ("cache_hits", stats.cache_hits.into()),
                    ("prefilter_skips", stats.prefilter_skips.into()),
                    ("conflict_edges", stats.conflict_edges.into()),
                    ("degraded_budget", stats.degraded_budget.into()),
                    ("degraded_deadline", stats.degraded_deadline.into()),
                    ("degraded_panic", stats.degraded_panic.into()),
                    ("rounds", stats.rounds.into()),
                ],
            );
        }
        BatchResult {
            graph,
            schedule: sched,
            stats,
        }
    }

    /// [`Scheduler::run`] over a pidgin program's statements.
    pub fn run_program(&mut self, p: &Program) -> BatchResult {
        self.run(&ops_of_program(p))
    }

    /// Builds the conflict graph for a batch: intern every op, decide
    /// every pair (cache first, parallel detectors for the rest).
    pub fn analyze(&mut self, ops: &[Op]) -> (ConflictGraph, SchedStats) {
        self.analyze_inner(ops, None)
    }

    fn analyze_inner(
        &mut self,
        ops: &[Op],
        cancel: Option<&CancelToken>,
    ) -> (ConflictGraph, SchedStats) {
        let n = ops.len();
        let t0 = std::time::Instant::now();
        let analyze_span = cxu_obs::span("sched.analyze");
        let mut stats = SchedStats {
            ops: n,
            pairs_total: n * n.saturating_sub(1) / 2,
            jobs: self.cfg.jobs.max(1),
            ..SchedStats::default()
        };

        let keys: Vec<OpKey> = ops.iter().map(|op| self.interner.intern_op(op)).collect();
        stats.distinct_shapes = self.interner.distinct_patterns();

        // Partition the pairs: trivially independent, memoized, or new.
        // Each *distinct* new PairKey is analyzed exactly once; repeats
        // inside the batch count as cache hits just like cross-batch
        // repeats — that is the memoization the interner buys.
        let mut trivial: Vec<(usize, usize, Verdict)> = Vec::new();
        let mut cached: Vec<(usize, usize, PairKey)> = Vec::new();
        let mut fresh: Vec<PairKey> = Vec::new();
        let mut fresh_seen: HashMap<PairKey, ()> = HashMap::new();
        let mut prefiltered: Vec<(PairKey, Verdict)> = Vec::new();
        let mut pending: Vec<(usize, usize, PairKey)> = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                let (ka, kb) = (keys[a], keys[b]);
                // Identical keys commute with themselves (both orders are
                // the same sequence), and reads never conflict: no
                // detector or cache entry needed.
                if ka == kb || (!ops[a].is_update() && !ops[b].is_update()) {
                    trivial.push((
                        a,
                        b,
                        Verdict {
                            conflict: false,
                            detector: Detector::Trivial,
                        },
                    ));
                    continue;
                }
                let pk = PairKey::new(ka, kb);
                // Every non-trivial pair costs one memo lookup; it is a
                // hit when served from memory (a previous batch, or an
                // earlier occurrence in this one) and a miss only when
                // it triggers a fresh analysis or a pre-filter skip — so
                // across any run, lookups = hits + misses and misses =
                // pairs analyzed + pairs prefiltered.
                cxu_obs::counter!("sched.cache.lookups").inc();
                if self.cache.contains_key(&pk) {
                    cxu_obs::counter!("sched.cache.hits").inc();
                    cached.push((a, b, pk));
                } else {
                    if fresh_seen.insert(pk, ()).is_none() {
                        cxu_obs::counter!("sched.cache.misses").inc();
                        // Sound batch pre-filter: intern-time summaries
                        // that provably preclude any embedding overlap
                        // discharge the pair with no detector at all. The
                        // decision still counts as one `sched.pair_ns`
                        // sample: the histogram covers every distinct
                        // pair decided this batch, filtered or analyzed.
                        let t_pair = std::time::Instant::now();
                        let (ia, ib) = (self.interner.info(ka), self.interner.info(kb));
                        if prefilter_no_conflict(&ops[a], ia, &ops[b], ib, self.cfg.semantics) {
                            let v = Verdict {
                                conflict: false,
                                detector: Detector::PrefilterNoConflict,
                            };
                            record_route(v);
                            cxu_obs::histogram!("sched.pair_ns").record_since(t_pair);
                            debug_assert!(
                                prefilter_cross_check(&ops[a], &ops[b], self.cfg.semantics),
                                "prefilter skipped a pair the full detector finds conflicting"
                            );
                            stats.prefilter_skips += 1;
                            prefiltered.push((pk, v));
                        } else {
                            fresh.push(pk);
                        }
                    } else {
                        cxu_obs::counter!("sched.cache.hits").inc();
                        stats.cache_hits += 1; // batch-local repeat
                    }
                    pending.push((a, b, pk));
                }
            }
        }
        stats.trivial = trivial.len();
        stats.cache_hits += cached.len();
        stats.pairs_analyzed = fresh.len();

        // Decide the distinct new pairs in parallel. Transient
        // degradations (expired deadline, cancellation, detector panic)
        // are *not* memoized — they reflect this batch's resource
        // envelope, not the pair itself, so a later batch retries them.
        // Pre-filter verdicts ARE memoized: they are exact properties of
        // the pair shape (under the current semantics, and a semantics
        // change flushes the cache via `set_config`).
        let mut decided: HashMap<PairKey, Verdict> = HashMap::new();
        for (pk, v) in prefiltered {
            self.cache.insert(pk, v);
            decided.insert(pk, v);
        }
        for (pk, v) in self.analyze_fresh(&fresh, cancel) {
            if matches!(
                v.detector,
                Detector::ConservativeDeadline | Detector::ConservativePanic
            ) {
                cxu_obs::counter!("sched.cache.skips").inc();
            } else {
                self.cache.insert(pk, v);
            }
            decided.insert(pk, v);
        }

        // Assemble edges and detector counters.
        let mut edges: Vec<Edge> = Vec::with_capacity(stats.pairs_total);
        for (a, b, verdict) in trivial {
            edges.push(Edge {
                a,
                b,
                verdict,
                cached: false,
            });
        }
        let mut first_use: HashMap<PairKey, ()> = HashMap::new();
        for (a, b, pk) in cached.into_iter().chain(pending) {
            let verdict = match decided.get(&pk) {
                Some(&v) => v,
                None => self.cache[&pk],
            };
            // The first batch occurrence of a freshly computed key is the
            // one that paid for the analysis; everything else was served
            // from memory.
            let cached_hit = !fresh_seen.contains_key(&pk) || first_use.insert(pk, ()).is_some();
            edges.push(Edge {
                a,
                b,
                verdict,
                cached: cached_hit,
            });
        }
        edges.sort_unstable_by_key(|e| (e.a, e.b));
        for e in &edges {
            match e.verdict.detector {
                Detector::Trivial => {}
                Detector::PrefilterNoConflict => {}
                Detector::PtimeLinearRead => stats.ptime_linear_read += 1,
                Detector::PtimeLinearUpdates => stats.ptime_linear_updates += 1,
                Detector::WitnessSearch => stats.witness_search += 1,
                Detector::ConservativeUndecided => stats.conservative += 1,
                Detector::ConservativeBudget => {
                    stats.conservative += 1;
                    stats.degraded_budget += 1;
                }
                Detector::ConservativeDeadline => {
                    stats.conservative += 1;
                    stats.degraded_deadline += 1;
                }
                Detector::ConservativePanic => {
                    stats.conservative += 1;
                    stats.degraded_panic += 1;
                }
            }
            if e.verdict.conflict {
                stats.conflict_edges += 1;
            }
        }

        // Edge-level degradation breakdown (counts *edges*, unlike the
        // per-analysis `sched.route.*` counters: one starved analysis
        // repeated across a batch degrades many edges).
        cxu_obs::counter!("sched.degraded.budget").add(stats.degraded_budget as u64);
        cxu_obs::counter!("sched.degraded.deadline").add(stats.degraded_deadline as u64);
        cxu_obs::counter!("sched.degraded.panic").add(stats.degraded_panic as u64);
        cxu_obs::histogram!("sched.analyze_ns").record_since(t0);
        analyze_span.close_with(&[
            ("ops", stats.ops.into()),
            ("pairs_analyzed", stats.pairs_analyzed.into()),
        ]);

        (ConflictGraph::new(n, edges), stats)
    }

    /// Runs the detectors for each distinct pair key, fanned out over
    /// `cfg.jobs` scoped threads. Work is handed out through an atomic
    /// cursor so a stray expensive NP-side pair cannot idle the other
    /// workers behind a fixed chunking.
    fn analyze_fresh(
        &self,
        fresh: &[PairKey],
        cancel: Option<&CancelToken>,
    ) -> Vec<(PairKey, Verdict)> {
        let jobs = self.cfg.jobs.max(1).min(fresh.len().max(1));
        type WorkItem<'s> = (
            PairKey,
            &'s Op,
            Option<&'s OpInfo>,
            &'s Op,
            Option<&'s OpInfo>,
        );
        let work: Vec<WorkItem<'_>> = fresh
            .iter()
            .map(|&pk| {
                let a = self
                    .interner
                    .representative(pk.lo)
                    .expect("interned before analysis");
                let b = self
                    .interner
                    .representative(pk.hi)
                    .expect("interned before analysis");
                (
                    pk,
                    a,
                    self.interner.info(pk.lo),
                    b,
                    self.interner.info(pk.hi),
                )
            })
            .collect();
        if jobs <= 1 || work.len() <= 1 {
            return work
                .into_iter()
                .map(|(pk, a, ia, b, ib)| (pk, decide_pair(a, ia, b, ib, &self.cfg, cancel)))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(PairKey, Verdict)>> = Mutex::new(Vec::with_capacity(work.len()));
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let cursor = &cursor;
                let results = &results;
                let work = &work;
                let cfg = &self.cfg;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(pk, a, ia, b, ib)) = work.get(i) else {
                            break;
                        };
                        local.push((pk, decide_pair(a, ia, b, ib, cfg, cancel)));
                    }
                    results
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .extend(local);
                });
            }
        });
        results.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_gen::parse::parse_program;
    use cxu_ops::{Insert, Read, Update};
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn read(p: &str) -> Op {
        Op::Read(Read::new(parse(p).unwrap()))
    }

    fn ins(p: &str, x: &str) -> Op {
        Op::Update(Update::Insert(Insert::new(
            parse(p).unwrap(),
            text::parse(x).unwrap(),
        )))
    }

    #[test]
    fn section1_batch() {
        let p = parse_program("y = read $x//A; insert $x/B, C; z = read $x//C").unwrap();
        let mut s = Scheduler::default();
        let out = s.run_program(&p);
        assert_eq!(out.stats.pairs_total, 3);
        // read//A vs insert: independent; insert vs read//C: conflict;
        // the two reads: trivial.
        assert!(out.graph.conflict(1, 2));
        assert!(!out.graph.conflict(0, 1));
        assert_eq!(out.stats.trivial, 1);
        assert_eq!(out.schedule.rounds, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn repeats_hit_the_cache_within_a_batch() {
        // Ten copies of the same read/update shapes: one real analysis.
        let mut ops = Vec::new();
        for _ in 0..5 {
            ops.push(read("x//C"));
            ops.push(ins("x/B", "C"));
        }
        let mut s = Scheduler::default();
        let out = s.run(&ops);
        assert_eq!(out.stats.pairs_total, 45);
        assert_eq!(out.stats.pairs_analyzed, 1, "one distinct pair shape");
        assert!(out.stats.cache_hits > 0);
        // 5 read-read pairs + 10 insert-insert identical pairs = trivial.
        assert_eq!(out.stats.trivial, 20);
        assert_eq!(
            out.stats.pairs_analyzed + out.stats.cache_hits + out.stats.trivial,
            out.stats.pairs_total
        );
    }

    #[test]
    fn cache_persists_across_batches() {
        let batch = vec![read("x//C"), ins("x/B", "C")];
        let mut s = Scheduler::default();
        let first = s.run(&batch);
        assert_eq!(first.stats.pairs_analyzed, 1);
        assert_eq!(first.stats.cache_hits, 0);
        let second = s.run(&batch);
        assert_eq!(second.stats.pairs_analyzed, 0);
        assert_eq!(second.stats.cache_hits, 1);
        // Verdicts are identical either way.
        assert_eq!(
            first.graph.edges()[0].verdict,
            second.graph.edges()[0].verdict
        );
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let p = parse_program(
            "y = read $x//A; insert $x/B, C; z = read $x//C; delete $x/B/C; \
             w = read $x/B; insert $x/D, E; v = read $x//E",
        )
        .unwrap();
        let cfg1 = SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        };
        let cfg4 = SchedConfig {
            jobs: 4,
            ..SchedConfig::default()
        };
        let out1 = Scheduler::new(cfg1).run_program(&p);
        let out4 = Scheduler::new(cfg4).run_program(&p);
        assert_eq!(out1.schedule, out4.schedule);
        for (e1, e4) in out1.graph.edges().iter().zip(out4.graph.edges()) {
            assert_eq!((e1.a, e1.b), (e4.a, e4.b));
            assert_eq!(e1.verdict, e4.verdict);
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let mut s = Scheduler::default();
        let out = s.run(&[]);
        assert_eq!(out.stats.pairs_total, 0);
        assert!(out.schedule.is_empty());
        let out1 = s.run(&[read("a/b")]);
        assert_eq!(out1.schedule.rounds, vec![vec![0]]);
    }

    #[test]
    fn zero_deadline_degrades_np_pairs_but_still_schedules() {
        // A branching read forces the NP route; with no time at all it
        // degrades to a conservative conflict, and the batch still
        // produces a (more serial) schedule.
        let ops = vec![read("a[b][c]"), ins("a[b]", "c"), read("x//Q")];
        let cfg = SchedConfig {
            pair_deadline: Some(std::time::Duration::ZERO),
            jobs: 1,
            ..SchedConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        let out = s.run(&ops);
        assert!(out.stats.degraded_deadline > 0);
        assert_eq!(out.stats.rounds, out.schedule.len());
        // Every op is scheduled exactly once.
        let mut seen: Vec<usize> = out.schedule.rounds.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn degraded_verdicts_are_not_memoized() {
        let ops = vec![read("a[b][c]"), ins("a[b]", "c")];
        let cfg = SchedConfig {
            pair_deadline: Some(std::time::Duration::ZERO),
            jobs: 1,
            ..SchedConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        let first = s.run(&ops);
        assert_eq!(first.stats.degraded_deadline, 1);
        assert_eq!(
            s.cached_verdicts(),
            0,
            "a deadline degradation must not poison the cache"
        );
        // Re-running re-analyzes the pair instead of serving the stale
        // conservative answer.
        let second = s.run(&ops);
        assert_eq!(second.stats.pairs_analyzed, 1);
        assert_eq!(second.stats.cache_hits, 0);
    }

    #[test]
    fn cancelled_batch_degrades_remaining_pairs() {
        use cxu_runtime::CancelToken;
        let token = CancelToken::new();
        token.cancel(); // cancel before the batch even starts
        let ops = vec![read("a[b][c]"), ins("a[b]", "c")];
        let cfg = SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        let out = s.run_with_cancel(&ops, &token);
        assert_eq!(out.stats.degraded_deadline, 1);
        assert!(out.graph.conflict(0, 1), "degraded pair must stay ordered");
        // Without the token the same pair is decided exactly.
        let out2 = s.run(&ops);
        assert_eq!(out2.stats.degraded_deadline, 0);
    }

    #[test]
    fn raising_the_budget_upgrades_conservative_verdicts() {
        // Regression: budget verdicts ARE memoized (they are a property
        // of pair + budget, stable while the config stands), so raising
        // the budget on a reused scheduler must flush them — otherwise
        // the pair stays frozen in ConservativeBudget forever.
        let ops = vec![read("a[b][c]"), ins("d", "f")];
        let starved = SchedConfig {
            np_max_trees: 10,
            jobs: 1,
            ..SchedConfig::default()
        };
        let mut s = Scheduler::new(starved);
        let first = s.run(&ops);
        assert_eq!(
            first.graph.edges()[0].verdict.detector,
            Detector::ConservativeBudget
        );
        assert!(first.graph.conflict(0, 1));
        assert_eq!(s.cached_verdicts(), 1, "budget verdicts are memoized");
        // Same config: the stale-but-valid verdict is served from cache.
        let again = s.run(&ops);
        assert_eq!(again.stats.cache_hits, 1);
        assert_eq!(again.stats.pairs_analyzed, 0);

        // Raise the budget: the cache must flush and the pair re-analyze
        // to the exact answer.
        s.set_config(SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        });
        assert_eq!(s.cached_verdicts(), 0, "config change flushes the cache");
        let third = s.run(&ops);
        assert_eq!(third.stats.pairs_analyzed, 1);
        assert_eq!(
            third.graph.edges()[0].verdict.detector,
            Detector::WitnessSearch
        );
        assert!(
            !third.graph.conflict(0, 1),
            "exact search proves independence"
        );

        // Changing only resource-envelope fields keeps the cache.
        let mut same_budget = *s.config();
        same_budget.jobs = 2;
        same_budget.pair_deadline = Some(std::time::Duration::from_secs(5));
        s.set_config(same_budget);
        assert_eq!(
            s.cached_verdicts(),
            1,
            "jobs/deadline change keeps verdicts"
        );
    }

    #[test]
    fn check_pair_matches_batch_verdicts() {
        let ops = vec![
            read("x//C"),
            ins("x/B", "C"),
            read("a[b][c]"),
            ins("d", "f"),
        ];
        let mut batch = Scheduler::new(SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        });
        let out = batch.run(&ops);
        let mut single = Scheduler::new(SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        });
        let deadline = Deadline::never();
        for e in out.graph.edges() {
            let d = single.check_pair(&ops[e.a], &ops[e.b], &deadline);
            assert_eq!(
                d.verdict, e.verdict,
                "pair ({}, {}) disagrees with the batch path",
                e.a, e.b
            );
        }
    }

    #[test]
    fn check_pair_memoizes_and_reports_cache_provenance() {
        let mut s = Scheduler::default();
        let (a, b) = (read("x//C"), ins("x/B", "C"));
        let deadline = Deadline::never();
        let first = s.check_pair(&a, &b, &deadline);
        assert!(!first.cached);
        assert!(first.verdict.conflict);
        let second = s.check_pair(&a, &b, &deadline);
        assert!(second.cached, "second call must be a cache hit");
        assert_eq!(second.verdict, first.verdict);
        // Order-normalized key: the swapped pair hits the same entry.
        let swapped = s.check_pair(&b, &a, &deadline);
        assert!(swapped.cached);
        // Trivial pairs never touch the cache.
        let rr = s.check_pair(&read("p/q"), &read("r//s"), &deadline);
        assert_eq!(rr.verdict.detector, Detector::Trivial);
        assert!(!rr.cached);
    }

    #[test]
    fn analyze_txn_pair_reduces_to_same_document_cross_pairs() {
        let mut s = Scheduler::default();
        let deadline = Deadline::never();
        let t = |doc: &str, op: Op| (doc.to_owned(), op);

        // Same shapes on different documents: independent by
        // construction, zero detector pairs.
        let a = vec![t("d1", ins("x/B", "C")), t("d2", read("x//C"))];
        let b = vec![t("d3", read("x//C")), t("d4", ins("x/B", "C"))];
        let r = s.analyze_txn_pair(&a, &b, &deadline);
        assert!(!r.conflict);
        assert_eq!(r.checked, 0);

        // Commuting ops on a shared document: checked, no conflict.
        let a = vec![t("d", ins("x/B", "C"))];
        let b = vec![t("d", ins("x/E", "F"))];
        let r = s.analyze_txn_pair(&a, &b, &deadline);
        assert!(!r.conflict);
        assert_eq!(r.checked, 1);

        // One conflicting cross pair poisons the whole transaction
        // pair, and the scan stops there.
        let a = vec![t("d", ins("x/E", "F")), t("d", ins("x/B", "C"))];
        let b = vec![t("d", read("x//C")), t("d", read("nowhere/else"))];
        let r = s.analyze_txn_pair(&a, &b, &deadline);
        assert!(r.conflict);
        assert!(!r.conservative);
        assert!(r.checked < 4, "early exit on the first conflict");

        // Repeated shapes ride the memo cache: rerunning the same
        // analysis costs no fresh detector work.
        let hits0 = s.cached_verdicts();
        let again = s.analyze_txn_pair(&a, &b, &deadline);
        assert_eq!(again.conflict, r.conflict);
        assert_eq!(s.cached_verdicts(), hits0, "no new cache entries");
    }

    #[test]
    fn analyze_txn_pair_treats_conservative_verdicts_as_conflicts() {
        let mut s = Scheduler::new(SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        });
        let a = vec![("d".to_owned(), read("a[b][c]"))];
        let b = vec![("d".to_owned(), ins("a[b]", "c"))];
        let expired = Deadline::after(std::time::Duration::ZERO);
        let r = s.analyze_txn_pair(&a, &b, &expired);
        assert!(r.conflict, "an unproved commutation must not admit");
        assert!(r.conservative, "and is reported as retryable");
    }

    #[test]
    fn check_pair_deadline_degradations_are_not_memoized() {
        let mut s = Scheduler::new(SchedConfig {
            jobs: 1,
            ..SchedConfig::default()
        });
        let (a, b) = (read("a[b][c]"), ins("a[b]", "c"));
        let expired = Deadline::after(std::time::Duration::ZERO);
        let starved = s.check_pair(&a, &b, &expired);
        assert_eq!(starved.verdict.detector, Detector::ConservativeDeadline);
        assert!(starved.verdict.conflict, "degraded pair stays ordered");
        assert_eq!(s.cached_verdicts(), 0);
        // With time, the same pair is decided exactly and memoized.
        let exact = s.check_pair(&a, &b, &Deadline::never());
        assert!(!exact.cached);
        assert_ne!(exact.verdict.detector, Detector::ConservativeDeadline);
        assert_eq!(s.cached_verdicts(), 1);
    }

    #[test]
    fn identical_updates_share_a_round() {
        // Self-feeding insert whose pairwise analysis would be Unknown —
        // but identical keys are trivially commuting.
        let ops = vec![ins("a//b", "b"), ins("a//b", "b")];
        let mut s = Scheduler::default();
        let out = s.run(&ops);
        assert!(!out.graph.conflict(0, 1));
        assert_eq!(out.schedule.len(), 1);
        assert_eq!(out.stats.trivial, 1);
    }
}
