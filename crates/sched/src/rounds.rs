//! Round scheduling: greedy coloring of the conflict graph into
//! conflict-free *rounds* that preserve the program order of every
//! conflicting pair.
//!
//! Operation `j` is assigned to round `1 + max{round(i) : i < j,
//! i conflicts with j}` (round 0 when no earlier conflict). This is the
//! ASAP level schedule of the conflict DAG; it guarantees:
//!
//! * **conflict-free rounds** — two ops sharing a round never conflict
//!   (had they conflicted, the later one would sit strictly deeper);
//! * **order safety** — conflicting pairs keep their original relative
//!   order across rounds, so executing rounds in sequence, with *any*
//!   order inside a round, is reachable from the serial execution by
//!   adjacent transpositions of proven-independent pairs only. Each such
//!   transposition preserves all observations (value semantics), so the
//!   whole schedule is observationally equivalent to serial execution —
//!   the property `tests/sched_validation.rs` checks on random programs.
//!
//! The round count is optimal for *order-preserving* schedules: every
//! chain of pairwise-conflicting operations must occupy distinct rounds,
//! and the ASAP depth equals the longest such chain ending at each op.

use crate::graph::ConflictGraph;

/// A batch schedule: operations grouped into conflict-free rounds,
/// rounds executed in sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// `rounds[k]` holds the (ascending) original indices of the
    /// operations running concurrently in round `k`.
    pub rounds: Vec<Vec<usize>>,
}

impl Schedule {
    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True iff the schedule has no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The round each operation landed in (`result[i]` = round of op `i`).
    pub fn round_of(&self) -> Vec<usize> {
        let n: usize = self.rounds.iter().map(Vec::len).sum();
        let mut out = vec![0; n];
        for (k, round) in self.rounds.iter().enumerate() {
            for &i in round {
                out[i] = k;
            }
        }
        out
    }

    /// One serial execution order compatible with the schedule: rounds
    /// in sequence, each round's ops in the given intra-round orders.
    /// `intra` must hold, per round, a permutation of that round's
    /// positions; use [`Schedule::serial_order`] for the canonical one.
    pub fn order_with(&self, intra: &[Vec<usize>]) -> Vec<usize> {
        assert_eq!(intra.len(), self.rounds.len(), "one permutation per round");
        let mut out = Vec::new();
        for (round, perm) in self.rounds.iter().zip(intra) {
            assert_eq!(perm.len(), round.len(), "permutation length mismatch");
            for &p in perm {
                out.push(round[p]);
            }
        }
        out
    }

    /// The canonical execution order: rounds in sequence, ascending
    /// indices inside each round.
    pub fn serial_order(&self) -> Vec<usize> {
        self.rounds.iter().flatten().copied().collect()
    }
}

/// Computes the order-preserving ASAP round schedule of a conflict graph.
pub fn schedule(graph: &ConflictGraph) -> Schedule {
    let n = graph.len();
    let mut round = vec![0usize; n];
    let mut rounds: Vec<Vec<usize>> = Vec::new();
    for j in 0..n {
        let mut r = 0;
        for &i in graph.conflicting_neighbors(j) {
            if i < j {
                r = r.max(round[i] + 1);
            }
        }
        round[j] = r;
        if rounds.len() <= r {
            rounds.resize_with(r + 1, Vec::new);
        }
        rounds[r].push(j);
    }
    Schedule { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConflictGraph, Edge};
    use crate::pairwise::{Detector, Verdict};

    fn graph(n: usize, conflicts: &[(usize, usize)]) -> ConflictGraph {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push(Edge {
                    a,
                    b,
                    verdict: Verdict {
                        conflict: conflicts.contains(&(a, b)),
                        detector: Detector::Trivial,
                    },
                    cached: false,
                });
            }
        }
        ConflictGraph::new(n, edges)
    }

    #[test]
    fn independent_batch_is_one_round() {
        let s = schedule(&graph(4, &[]));
        assert_eq!(s.rounds, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn chain_serializes() {
        let s = schedule(&graph(3, &[(0, 1), (1, 2)]));
        assert_eq!(s.rounds, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(s.round_of(), vec![0, 1, 2]);
    }

    #[test]
    fn rounds_are_conflict_free_and_order_preserving() {
        let g = graph(6, &[(0, 2), (1, 2), (2, 5), (3, 4)]);
        let s = schedule(&g);
        let round = s.round_of();
        for e in g.edges() {
            if e.verdict.conflict {
                assert!(
                    round[e.a] < round[e.b],
                    "conflicting pair ({}, {}) must stay ordered",
                    e.a,
                    e.b
                );
            }
        }
    }

    #[test]
    fn depth_equals_longest_conflict_chain() {
        // 0—1—2—3 chain plus independent 4: depth 4, op 4 in round 0.
        let s = schedule(&graph(5, &[(0, 1), (1, 2), (2, 3)]));
        assert_eq!(s.len(), 4);
        assert_eq!(s.rounds[0], vec![0, 4]);
    }

    #[test]
    fn order_with_permutes_within_rounds() {
        let s = Schedule {
            rounds: vec![vec![0, 2], vec![1]],
        };
        assert_eq!(s.serial_order(), vec![0, 2, 1]);
        assert_eq!(s.order_with(&[vec![1, 0], vec![0]]), vec![2, 0, 1]);
    }
}
