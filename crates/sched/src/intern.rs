//! Hash-consing of operation shapes, and the pairwise-verdict cache key.
//!
//! Heavy traffic repeats pattern shapes: a production batch of thousands
//! of operations typically draws from a few dozen templates. The
//! [`Interner`] maps every pattern (and every inserted payload tree) to a
//! small integer id via a *canonical form* — a serialization in which
//! sibling order is sorted away, so any two patterns that are isomorphic
//! as unordered trees (with marked output and matching axes/labels)
//! share an id. Conflict semantics are invariant under that isomorphism,
//! which makes the id a sound cache key: one pairwise detection pays for
//! every repetition of the same shape pair.

use crate::op::Op;
use cxu_automata::compiled::{Chain, Summary};
use cxu_core::matching;
use cxu_ops::Update;
use cxu_pattern::{Axis, PNodeId, Pattern};
use cxu_tree::{NodeId, Tree};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Interned id of a pattern shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(pub u32);

/// Interned id of a payload-tree shape (insert subtrees).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeId(pub u32);

/// The kind of an operation, part of its cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// A read.
    Read,
    /// An insertion (carries a payload id).
    Insert,
    /// A deletion.
    Delete,
}

/// The canonical identity of an operation: kind + pattern shape +
/// payload shape. Two ops with equal keys are semantically
/// interchangeable for every conflict question.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpKey {
    /// Operation kind.
    pub kind: OpKind,
    /// Interned selection pattern.
    pub pattern: PatternId,
    /// Interned insert payload (None for reads and deletes).
    pub payload: Option<TreeId>,
}

/// An unordered pair of [`OpKey`]s — the memo key for pairwise verdicts.
/// Conflict and commutation are symmetric questions, so the pair is
/// normalized to `lo <= hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// The smaller key.
    pub lo: OpKey,
    /// The larger key.
    pub hi: OpKey,
}

impl PairKey {
    /// Normalized constructor.
    pub fn new(a: OpKey, b: OpKey) -> PairKey {
        if a <= b {
            PairKey { lo: a, hi: b }
        } else {
            PairKey { lo: b, hi: a }
        }
    }
}

/// Canonical serialization of a pattern: each node renders as
/// `axis label output? (sorted children)`, so sibling order — which is
/// meaningless for unordered tree patterns — never splits cache entries.
pub fn canonical_pattern_key(p: &Pattern) -> String {
    fn node(p: &Pattern, n: PNodeId, out: &mut String) {
        match p.axis(n) {
            Some(Axis::Descendant) => out.push_str("//"),
            Some(Axis::Child) => out.push('/'),
            None => {} // root
        }
        match p.label(n) {
            Some(l) => out.push_str(l.as_str()),
            None => out.push('*'),
        }
        if n == p.output() {
            out.push('!');
        }
        let mut kids: Vec<String> = p
            .children(n)
            .iter()
            .map(|&c| {
                let mut s = String::new();
                node(p, c, &mut s);
                s
            })
            .collect();
        if !kids.is_empty() {
            kids.sort_unstable();
            out.push('(');
            for k in kids {
                out.push_str(&k);
                out.push(',');
            }
            out.push(')');
        }
    }
    let mut s = String::new();
    node(p, p.root(), &mut s);
    s
}

/// Canonical serialization of an unordered tree (payloads): label plus
/// sorted children — equal strings iff the trees are isomorphic.
pub fn canonical_tree_key(t: &Tree) -> String {
    fn node(t: &Tree, n: NodeId, out: &mut String) {
        out.push_str(t.label(n).as_str());
        let kids: &[NodeId] = t.children(n);
        if !kids.is_empty() {
            let mut rendered: Vec<String> = kids
                .iter()
                .map(|&c| {
                    let mut s = String::new();
                    node(t, c, &mut s);
                    s
                })
                .collect();
            rendered.sort_unstable();
            out.push('(');
            for k in rendered {
                out.push_str(&k);
                out.push(',');
            }
            out.push(')');
        }
    }
    let mut s = String::new();
    node(t, t.root(), &mut s);
    s
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A deterministic routing hash of one operation's *shape*: FNV-1a over
/// its kind and canonical pattern/payload serializations.
///
/// Deliberately **not** derived from [`PatternId`]/[`TreeId`] (those are
/// per-interner insertion-order sequence numbers, different on every
/// shard and every restart) and **not** `std`'s `DefaultHasher` (its
/// seeding is unspecified). FNV-1a over the canonical strings gives the
/// property a sharded server needs: the same shape hashes identically
/// across shards, processes, and restarts, so repeated traffic always
/// lands on the same warm shard.
pub fn op_route_hash(op: &Op) -> u64 {
    let (kind, pattern, payload) = match op {
        Op::Read(r) => (0u8, r.pattern(), None),
        Op::Update(Update::Insert(i)) => (1u8, i.pattern(), Some(i.subtree())),
        Op::Update(Update::Delete(d)) => (2u8, d.pattern(), None),
    };
    let mut h = fnv1a(FNV_OFFSET, &[kind]);
    h = fnv1a(h, canonical_pattern_key(pattern).as_bytes());
    h = fnv1a(h, &[0xff]); // field separator
    if let Some(t) = payload {
        h = fnv1a(h, canonical_tree_key(t).as_bytes());
    }
    h
}

/// Order-independent routing hash of an operation pair: the two
/// [`op_route_hash`]es are sorted then mixed, so `(a, b)` and `(b, a)`
/// route to the same shard — matching [`PairKey`]'s normalization of
/// the memo cache itself.
pub fn pair_route_hash(a: &Op, b: &Op) -> u64 {
    let (x, y) = (op_route_hash(a), op_route_hash(b));
    let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
    fnv1a(fnv1a(FNV_OFFSET, &lo.to_le_bytes()), &hi.to_le_bytes())
}

/// Per-key compiled form, built **once** at intern time and reused by
/// every pair the key participates in:
///
/// * for a read, the compiled `ℛ(l)` chain of its (linear) pattern;
/// * for an update, the compiled chain of its **spine** (the linear
///   reduction of Lemmas 4 and 8), which for a linear update equals the
///   pattern itself.
///
/// `summary` digests the chain for the batch pre-filter (depth interval,
/// rigid prefix, required symbols).
#[derive(Clone, Debug)]
pub struct OpInfo {
    /// Compiled chain (read pattern, or update spine).
    pub chain: Chain,
    /// Pre-filter digest of `chain`.
    pub summary: Summary,
    /// Is the *full* pattern linear? (For updates the spine is always
    /// linear, but the PTIME update-update route additionally needs the
    /// whole pattern linear.)
    pub linear: bool,
}

/// Hash-consing interner for pattern and payload shapes. Also keeps one
/// *representative* [`Op`] per key, so the analysis engine can run
/// detectors on a concrete operation for any key it encounters, and the
/// compiled-automaton cache ([`OpInfo`]): a pattern appearing in k pairs
/// is compiled once, not k times.
#[derive(Default)]
pub struct Interner {
    patterns: HashMap<String, PatternId>,
    trees: HashMap<String, TreeId>,
    reps: HashMap<OpKey, Op>,
    /// `None` = the op is a read with a branching pattern (uncompilable:
    /// the PTIME machinery does not apply to it).
    infos: HashMap<OpKey, Option<OpInfo>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a pattern shape.
    pub fn intern_pattern(&mut self, p: &Pattern) -> PatternId {
        let key = canonical_pattern_key(p);
        let next = PatternId(self.patterns.len() as u32);
        match self.patterns.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                cxu_obs::counter!("sched.intern.pattern_hit").inc();
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                cxu_obs::counter!("sched.intern.pattern_new").inc();
                *e.insert(next)
            }
        }
    }

    /// Interns a payload-tree shape.
    pub fn intern_tree(&mut self, t: &Tree) -> TreeId {
        let key = canonical_tree_key(t);
        let next = TreeId(self.trees.len() as u32);
        match self.trees.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                cxu_obs::counter!("sched.intern.tree_hit").inc();
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                cxu_obs::counter!("sched.intern.tree_new").inc();
                *e.insert(next)
            }
        }
    }

    /// Interns an operation, remembering it as the representative for
    /// its key if the key is new.
    pub fn intern_op(&mut self, op: &Op) -> OpKey {
        let key = match op {
            Op::Read(r) => OpKey {
                kind: OpKind::Read,
                pattern: self.intern_pattern(r.pattern()),
                payload: None,
            },
            Op::Update(Update::Insert(i)) => OpKey {
                kind: OpKind::Insert,
                pattern: self.intern_pattern(i.pattern()),
                payload: Some(self.intern_tree(i.subtree())),
            },
            Op::Update(Update::Delete(d)) => OpKey {
                kind: OpKind::Delete,
                pattern: self.intern_pattern(d.pattern()),
                payload: None,
            },
        };
        self.reps.entry(key).or_insert_with(|| op.clone());
        if let Entry::Vacant(slot) = self.infos.entry(key) {
            cxu_obs::counter!("automata.compile.miss").inc();
            let info = match op {
                // Reads compile only when linear — a branching read is
                // outside the §4 fragment and routes to the NP search.
                Op::Read(r) if r.pattern().is_linear() => {
                    let chain = matching::compile(r.pattern());
                    let summary = chain.summary();
                    Some(OpInfo {
                        chain,
                        summary,
                        linear: true,
                    })
                }
                Op::Read(_) => None,
                // Updates always compile their spine (Lemmas 4 and 8).
                Op::Update(u) => {
                    let chain = matching::compile_spine(u.pattern());
                    let summary = chain.summary();
                    Some(OpInfo {
                        chain,
                        summary,
                        linear: u.pattern().is_linear(),
                    })
                }
            };
            slot.insert(info);
        } else {
            cxu_obs::counter!("automata.compile.hit").inc();
        }
        key
    }

    /// The compiled form for a key interned earlier. Outer `None`: key
    /// never interned. Inner `None`: branching read, uncompilable.
    pub fn info(&self, key: OpKey) -> Option<&OpInfo> {
        self.infos.get(&key).and_then(|i| i.as_ref())
    }

    /// The representative operation for a key interned earlier.
    pub fn representative(&self, key: OpKey) -> Option<&Op> {
        self.reps.get(&key)
    }

    /// Number of distinct pattern shapes seen.
    pub fn distinct_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Number of distinct payload shapes seen.
    pub fn distinct_payloads(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::{Insert, Read};
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    #[test]
    fn sibling_order_is_canonicalized() {
        let a = parse("a[b][c]/d").unwrap();
        let b = parse("a[c][b]/d").unwrap();
        assert_eq!(canonical_pattern_key(&a), canonical_pattern_key(&b));
        // …but a different output node is a different shape.
        let c = parse("a[b][c]").unwrap();
        assert_ne!(canonical_pattern_key(&a), canonical_pattern_key(&c));
    }

    #[test]
    fn axes_and_wildcards_distinguish() {
        for (x, y) in [("a/b", "a//b"), ("a/b", "a/*"), ("a/b", "x/b")] {
            assert_ne!(
                canonical_pattern_key(&parse(x).unwrap()),
                canonical_pattern_key(&parse(y).unwrap()),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn tree_key_is_isomorphism_invariant() {
        let a = text::parse("r(x(p q) y)").unwrap();
        let b = text::parse("r(y x(q p))").unwrap();
        assert_eq!(canonical_tree_key(&a), canonical_tree_key(&b));
        let c = text::parse("r(y x(q q))").unwrap();
        assert_ne!(canonical_tree_key(&a), canonical_tree_key(&c));
    }

    #[test]
    fn interner_hash_conses() {
        let mut it = Interner::new();
        let r1 = Op::Read(Read::new(parse("a//b").unwrap()));
        let r2 = Op::Read(Read::new(parse("a//b").unwrap()));
        let k1 = it.intern_op(&r1);
        let k2 = it.intern_op(&r2);
        assert_eq!(k1, k2);
        assert_eq!(it.distinct_patterns(), 1);
        assert!(it.representative(k1).is_some());
    }

    #[test]
    fn kind_splits_keys() {
        let mut it = Interner::new();
        let p = parse("a/b").unwrap();
        let read = Op::Read(Read::new(p.clone()));
        let insert = Op::Update(Update::Insert(Insert::new(
            p.clone(),
            text::parse("x").unwrap(),
        )));
        let k1 = it.intern_op(&read);
        let k2 = it.intern_op(&insert);
        assert_ne!(k1, k2);
        assert_eq!(it.distinct_patterns(), 1, "same pattern shape shared");
    }

    #[test]
    fn pair_key_is_unordered() {
        let mut it = Interner::new();
        let a = it.intern_op(&Op::Read(Read::new(parse("a/b").unwrap())));
        let b = it.intern_op(&Op::Read(Read::new(parse("a//b").unwrap())));
        assert_eq!(PairKey::new(a, b), PairKey::new(b, a));
    }
}
