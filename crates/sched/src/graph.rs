//! The conflict graph: one vertex per batch operation, one edge per
//! conflicting pair, every edge annotated with the detector that decided
//! it and whether the verdict came from the memo cache.

use crate::op::Op;
use crate::pairwise::{Detector, Verdict};
use std::fmt::Write as _;

/// One decided pair. Present for *every* pair `(a, b)`, `a < b` — both
/// conflicting and independent — so callers can audit coverage; the
/// graph's adjacency indexes only the conflicting ones.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Lower operation index.
    pub a: usize,
    /// Higher operation index.
    pub b: usize,
    /// The decision and its provenance.
    pub verdict: Verdict,
    /// Served from the pairwise memo cache (batch-local repeat or a
    /// previous batch) rather than computed fresh.
    pub cached: bool,
}

/// Undirected conflict graph over a batch of `n` operations.
#[derive(Clone, Debug, Default)]
pub struct ConflictGraph {
    n: usize,
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>, // conflicting neighbors only
}

impl ConflictGraph {
    /// Builds the graph from decided pairs.
    pub fn new(n: usize, edges: Vec<Edge>) -> ConflictGraph {
        let mut adj = vec![Vec::new(); n];
        for e in &edges {
            if e.verdict.conflict {
                adj[e.a].push(e.b);
                adj[e.b].push(e.a);
            }
        }
        ConflictGraph { n, edges, adj }
    }

    /// Number of operations (vertices).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All decided pairs (conflicting and independent).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The conflicting neighbors of operation `i`.
    pub fn conflicting_neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Do operations `i` and `j` conflict?
    pub fn conflict(&self, i: usize, j: usize) -> bool {
        self.adj[i].contains(&j)
    }

    /// Number of conflicting pairs.
    pub fn conflict_count(&self) -> usize {
        self.edges.iter().filter(|e| e.verdict.conflict).count()
    }

    /// Graphviz rendering: vertices labeled with the operations,
    /// conflict edges solid (colored by detector), independent pairs
    /// omitted. Conventions follow `cxu_pattern::dot`.
    pub fn to_dot(&self, ops: &[Op], name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "graph {} {{", sanitize(name));
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for (i, op) in ops.iter().enumerate() {
            let shape = if op.is_update() { "box" } else { "ellipse" };
            let _ = writeln!(
                out,
                "  n{i} [shape={shape}, label=\"{i}: {}\"];",
                escape(&op.label())
            );
        }
        for e in &self.edges {
            if !e.verdict.conflict {
                continue;
            }
            // Conservative edges carry a label naming *why* the verdict
            // is assumed rather than proven.
            let (color, reason) = match e.verdict.detector {
                Detector::Trivial => ("black", None),
                // Unreachable here (prefilter verdicts are never
                // conflicts), but kept total for exhaustiveness.
                Detector::PrefilterNoConflict => ("black", None),
                Detector::PtimeLinearRead => ("blue", None),
                Detector::PtimeLinearUpdates => ("darkgreen", None),
                Detector::WitnessSearch => ("red", None),
                Detector::ConservativeUndecided => ("orange", Some("undecided")),
                Detector::ConservativeBudget => ("orange", Some("budget")),
                Detector::ConservativeDeadline => ("purple", Some("deadline")),
                Detector::ConservativePanic => ("brown", Some("panic")),
            };
            let style = if e.cached { "dashed" } else { "solid" };
            let label = match reason {
                Some(r) => format!(", label=\"{r}\", fontcolor={color}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  n{} -- n{} [color={color}, style={style}{label}];",
                e.a, e.b
            );
        }
        out.push_str("}\n");
        out
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "g".into()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use cxu_ops::Read;
    use cxu_pattern::xpath::parse;

    fn edge(a: usize, b: usize, conflict: bool) -> Edge {
        Edge {
            a,
            b,
            verdict: Verdict {
                conflict,
                detector: Detector::PtimeLinearRead,
            },
            cached: false,
        }
    }

    #[test]
    fn adjacency_indexes_conflicts_only() {
        let g = ConflictGraph::new(
            3,
            vec![edge(0, 1, true), edge(0, 2, false), edge(1, 2, true)],
        );
        assert!(g.conflict(0, 1));
        assert!(g.conflict(1, 0));
        assert!(!g.conflict(0, 2));
        assert_eq!(g.conflict_count(), 2);
        assert_eq!(g.conflicting_neighbors(1), &[0, 2]);
        assert_eq!(g.edges().len(), 3);
    }

    #[test]
    fn dot_renders_conflicts() {
        let ops: Vec<Op> = ["a/b", "a//c"]
            .iter()
            .map(|s| Op::Read(Read::new(parse(s).unwrap())))
            .collect();
        let g = ConflictGraph::new(2, vec![edge(0, 1, true)]);
        let dot = g.to_dot(&ops, "conflicts");
        assert!(dot.starts_with("graph conflicts {"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("read a/b"));
    }

    #[test]
    fn dot_labels_conservative_edges_with_reason() {
        let ops: Vec<Op> = ["a/b", "a//c"]
            .iter()
            .map(|s| Op::Read(Read::new(parse(s).unwrap())))
            .collect();
        for (det, reason) in [
            (Detector::ConservativeUndecided, "undecided"),
            (Detector::ConservativeBudget, "budget"),
            (Detector::ConservativeDeadline, "deadline"),
            (Detector::ConservativePanic, "panic"),
        ] {
            let g = ConflictGraph::new(
                2,
                vec![Edge {
                    a: 0,
                    b: 1,
                    verdict: Verdict {
                        conflict: true,
                        detector: det,
                    },
                    cached: false,
                }],
            );
            let dot = g.to_dot(&ops, "g");
            assert!(
                dot.contains(&format!("label=\"{reason}\"")),
                "missing {reason} label in {dot}"
            );
        }
    }
}
