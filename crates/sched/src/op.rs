//! The batch operation type: a read or an update, as one scheduling unit.

use cxu_gen::program::{Program, Stmt};
use cxu_ops::{Read, Update};
use cxu_pattern::Pattern;
use std::fmt;

/// One operation of a batch — the unit the scheduler places into rounds.
#[derive(Clone, Debug)]
pub enum Op {
    /// A read (never mutates; pairs of reads never conflict).
    Read(Read),
    /// An insert or delete.
    Update(Update),
}

impl Op {
    /// The operation's selection pattern.
    pub fn pattern(&self) -> &Pattern {
        match self {
            Op::Read(r) => r.pattern(),
            Op::Update(u) => u.pattern(),
        }
    }

    /// Is this operation a mutator?
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Update(_))
    }

    /// A short human-readable label (used by the DOT output).
    pub fn label(&self) -> String {
        match self {
            Op::Read(r) => format!("read {}", r.pattern()),
            Op::Update(Update::Insert(i)) => format!(
                "insert {}, {}",
                i.pattern(),
                cxu_tree::text::to_text(i.subtree())
            ),
            Op::Update(Update::Delete(d)) => format!("delete {}", d.pattern()),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl From<Stmt> for Op {
    fn from(s: Stmt) -> Op {
        match s {
            Stmt::Read(r) => Op::Read(r),
            Stmt::Update(u) => Op::Update(u),
        }
    }
}

impl From<&Stmt> for Op {
    fn from(s: &Stmt) -> Op {
        s.clone().into()
    }
}

/// The statements of a pidgin program as a batch of operations, in
/// program order (index `i` of the result is statement `i`).
pub fn ops_of_program(p: &Program) -> Vec<Op> {
    p.stmts.iter().map(Op::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_gen::parse::parse_program;

    #[test]
    fn program_conversion_preserves_order_and_kind() {
        let p = parse_program("y = read $x//A; insert $x/B, C; delete $x/B/C").unwrap();
        let ops = ops_of_program(&p);
        assert_eq!(ops.len(), 3);
        assert!(!ops[0].is_update());
        assert!(ops[1].is_update());
        assert!(ops[2].is_update());
    }

    #[test]
    fn labels_are_printable() {
        let p = parse_program("insert $x/B, C(D)").unwrap();
        let ops = ops_of_program(&p);
        assert!(ops[0].label().starts_with("insert"));
        assert!(ops[0].label().contains("C(D)"));
    }
}
