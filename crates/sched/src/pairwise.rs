//! Pairwise conflict decisions: routing between the PTIME detectors and
//! the NP-side fallbacks, with the decision provenance recorded.
//!
//! Routing rules (see `DESIGN.md`, "cxu-sched"):
//!
//! * **read–read** — never conflicts (reads do not mutate): trivial.
//! * **identical keys** — an operation always commutes with itself
//!   (both orders are literally the same sequence): trivial.
//! * **read–update, linear read** — the §4 PTIME detectors
//!   ([`cxu_core::detect`]), exact over all trees.
//! * **read–update, branching read** — NP-complete (§5); bounded
//!   exhaustive search up to the Lemma 11 witness bound
//!   ([`cxu_core::brute::decide`]). Exact when the candidate count fits
//!   the budget, otherwise *conservatively a conflict*.
//! * **update–update, both linear** — the §6 linear commutativity
//!   analysis ([`cxu_core::update_update_linear`]); `Unknown` verdicts
//!   are conservatively conflicts.
//! * **update–update, branching** — bounded witness search
//!   ([`cxu_core::update_update::find_noncommuting_witness`]). A found
//!   witness is a definite conflict; "no witness within budget" is only
//!   trusted when [`SchedConfig::trust_bounded_search`] is set (there is
//!   no Lemma 11 analogue for update pairs), otherwise conservative.
//!
//! A pair is scheduled concurrently **only** when its verdict is a
//! proven non-conflict, so every conservative answer costs parallelism,
//! never correctness.

use crate::intern::OpInfo;
use crate::op::Op;
use crate::SchedConfig;
use cxu_automata::compiled::rigid_clash;
use cxu_core::update_update::{find_noncommuting_witness_deadline, Budget as UuBudget, Outcome};
use cxu_core::update_update_linear::{
    commutativity_deadline, commutativity_deadline_compiled, Commutativity,
};
use cxu_core::{brute, detect};
use cxu_ops::{Read, Semantics, Update};
use cxu_runtime::Deadline;

/// Which detector decided a pair (provenance, surfaced per edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Detector {
    /// Read–read, or identical operation keys: no analysis needed.
    Trivial,
    /// Skipped by the sound batch pre-filter: the per-op summaries
    /// (rigid prefixes / depth intervals, computed at intern time)
    /// provably preclude any embedding overlap, so the pair is a
    /// **proven** non-conflict — no detector ever ran. See
    /// [`prefilter_no_conflict`].
    PrefilterNoConflict,
    /// §4 PTIME read–update detector (Theorems 1–2), exact.
    PtimeLinearRead,
    /// §6 linear update–update commutativity analysis, exact when it
    /// answers Commute/Conflict.
    PtimeLinearUpdates,
    /// Bounded NP-side witness search, exact within its budget
    /// (read–update: up to the Lemma 11 bound).
    WitnessSearch,
    /// The route itself is undecidable within the detectors' theory
    /// (linear update–update `Unknown`, or an untrusted bounded-search
    /// "no witness"); the pair is *assumed* to conflict (sound, never
    /// parallelized).
    ConservativeUndecided,
    /// The candidate-count budget ran out before the search finished.
    ConservativeBudget,
    /// The pair's deadline expired (or its cancel token fired)
    /// mid-analysis.
    ConservativeDeadline,
    /// The detector panicked; the engine's `catch_unwind` guard isolated
    /// it and assumed a conflict.
    ConservativePanic,
}

impl Detector {
    /// Stable kebab-case name, used by the CLI, DOT/JSON output, and
    /// the observability layer (`sched.route.*` counter suffixes use
    /// the same words with `-` as `_`).
    pub fn name(self) -> &'static str {
        match self {
            Detector::Trivial => "trivial",
            Detector::PrefilterNoConflict => "prefilter-no-conflict",
            Detector::PtimeLinearRead => "ptime-linear-read",
            Detector::PtimeLinearUpdates => "ptime-linear-updates",
            Detector::WitnessSearch => "witness-search",
            Detector::ConservativeUndecided => "conservative-undecided",
            Detector::ConservativeBudget => "conservative-budget",
            Detector::ConservativeDeadline => "conservative-deadline",
            Detector::ConservativePanic => "conservative-panic",
        }
    }

    /// Is this verdict an assumed conflict rather than a proven answer?
    pub fn is_conservative(self) -> bool {
        matches!(
            self,
            Detector::ConservativeUndecided
                | Detector::ConservativeBudget
                | Detector::ConservativeDeadline
                | Detector::ConservativePanic
        )
    }
}

/// The decision for one pair of operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// Do the two operations conflict (must stay ordered)?
    pub conflict: bool,
    /// Which detector produced the answer.
    pub detector: Detector,
}

impl Verdict {
    fn trivial() -> Verdict {
        Verdict {
            conflict: false,
            detector: Detector::Trivial,
        }
    }

    /// An assumed conflict with the given (conservative) provenance.
    pub(crate) fn conservative(detector: Detector) -> Verdict {
        debug_assert!(detector.is_conservative());
        Verdict {
            conflict: true,
            detector,
        }
    }
}

/// Decides one pair, routing to the cheapest sound detector.
/// Symmetric: `analyze_pair(a, b, c)` ≡ `analyze_pair(b, a, c)`.
pub fn analyze_pair(a: &Op, b: &Op, cfg: &SchedConfig) -> Verdict {
    analyze_pair_deadline(a, b, cfg, &Deadline::never())
}

/// [`analyze_pair`] under a cooperative deadline: the NP-side searches
/// poll it and, on expiry, the pair degrades to
/// [`Detector::ConservativeDeadline`]. The PTIME routes never degrade —
/// they finish long before any reasonable slice.
pub fn analyze_pair_deadline(a: &Op, b: &Op, cfg: &SchedConfig, deadline: &Deadline) -> Verdict {
    analyze_pair_info(a, None, b, None, cfg, deadline)
}

/// [`analyze_pair_deadline`] with the interner's cached compiled forms.
/// When the relevant chains are available the PTIME routes run on the
/// bitset product directly — no per-pair pattern lowering; with `None`
/// infos the legacy per-call paths are used. Verdicts are identical
/// either way (the compiled matcher is cross-validated against the NFA
/// oracle in `core::matching` and `automata/tests/compiled.rs`).
pub fn analyze_pair_info(
    a: &Op,
    ia: Option<&OpInfo>,
    b: &Op,
    ib: Option<&OpInfo>,
    cfg: &SchedConfig,
    deadline: &Deadline,
) -> Verdict {
    match (a, b) {
        (Op::Read(_), Op::Read(_)) => Verdict::trivial(),
        (Op::Read(r), Op::Update(u)) => read_update_info(r, ia, u, ib, cfg, deadline),
        (Op::Update(u), Op::Read(r)) => read_update_info(r, ib, u, ia, cfg, deadline),
        (Op::Update(u1), Op::Update(u2)) => update_update_info(u1, ia, u2, ib, cfg, deadline),
    }
}

/// Can the pair be skipped without running **any** detector? Sound: a
/// `true` answer proves non-conflict under `sem` on every tree.
///
/// Two rules, both factoring through the §4 reduction (conflicts require
/// a prefix of the read chain and the update's spine chain to match
/// strongly or weakly — see DESIGN.md § Performance for the full
/// argument):
///
/// * **Rigid clash** — some position `t` lies before the first `(.)* `
///   gap of *both* chains and carries two different concrete symbols.
///   Every word of one language has symbol `x` at position `t`, every
///   word of the other has `y ≠ x`, so all the prefix languages the
///   detectors consult are disjoint. Applies to read–update with a
///   linear read (the update may branch: Lemmas 4/8 reduce it to its
///   spine) and to update–update with both patterns linear (the §6
///   cross-checks are two Node-semantics read–update questions).
/// * **Depth gap** (read–update, Node semantics only) — a gap-free read
///   is shorter than the update spine's minimum depth: every strong
///   prefix match is ruled out by length alone, and Node semantics
///   consults weak matches only on descendant edges, of which a gap-free
///   read has none.
///
/// `debug_assert` cross-checks in the engine plus the seeded
/// `prefilter_validation` suite verify the predicate against the full
/// detectors.
pub fn prefilter_no_conflict(
    a: &Op,
    ia: Option<&OpInfo>,
    b: &Op,
    ib: Option<&OpInfo>,
    sem: Semantics,
) -> bool {
    match (a, b) {
        // Read–read pairs are trivially non-conflicting; the engine's
        // trivial route owns them.
        (Op::Read(_), Op::Read(_)) => false,
        (Op::Read(_), Op::Update(_)) => read_update_prefilter(ia, ib, sem),
        (Op::Update(_), Op::Read(_)) => read_update_prefilter(ib, ia, sem),
        (Op::Update(_), Op::Update(_)) => match (ia, ib) {
            // Both-linear only: the soundness argument runs through the
            // §6 cross-checks, which exist only for linear patterns.
            (Some(x), Some(y)) if x.linear && y.linear => rigid_clash(&x.summary, &y.summary),
            _ => false,
        },
    }
}

fn read_update_prefilter(read: Option<&OpInfo>, upd: Option<&OpInfo>, sem: Semantics) -> bool {
    // A read's info exists iff its pattern is linear; branching reads
    // route to the NP search, where the prefilter does not apply.
    let (Some(r), Some(u)) = (read, upd) else {
        return false;
    };
    if rigid_clash(&r.summary, &u.summary) {
        return true;
    }
    sem == Semantics::Node && r.summary.is_rigid() && r.summary.min_depth < u.summary.min_depth
}

fn read_update_info(
    r: &Read,
    ri: Option<&OpInfo>,
    u: &Update,
    ui: Option<&OpInfo>,
    cfg: &SchedConfig,
    deadline: &Deadline,
) -> Verdict {
    if let (Some(ri), Some(ui)) = (ri, ui) {
        let conflict =
            detect::read_update_conflict_compiled(r, &ri.chain, u, &ui.chain, cfg.semantics)
                .expect("a read's compiled info implies a linear read");
        return Verdict {
            conflict,
            detector: Detector::PtimeLinearRead,
        };
    }
    read_update(r, u, cfg, deadline)
}

fn update_update_info(
    u1: &Update,
    i1: Option<&OpInfo>,
    u2: &Update,
    i2: Option<&OpInfo>,
    cfg: &SchedConfig,
    deadline: &Deadline,
) -> Verdict {
    if let (Some(i1), Some(i2)) = (i1, i2) {
        if i1.linear && i2.linear {
            let budget = UuBudget {
                max_nodes: cfg.np_max_nodes,
                max_trees: cfg.np_max_trees,
            };
            let c = commutativity_deadline_compiled(u1, u2, &i1.chain, &i2.chain, budget, deadline)
                .expect("linearity checked via OpInfo");
            return match c {
                Commutativity::Commute => Verdict {
                    conflict: false,
                    detector: Detector::PtimeLinearUpdates,
                },
                Commutativity::Conflict(_) => Verdict {
                    conflict: true,
                    detector: Detector::PtimeLinearUpdates,
                },
                Commutativity::Unknown => Verdict::conservative(Detector::ConservativeUndecided),
                Commutativity::DeadlineExceeded => {
                    Verdict::conservative(Detector::ConservativeDeadline)
                }
            };
        }
    }
    update_update(u1, u2, cfg, deadline)
}

fn read_update(r: &Read, u: &Update, cfg: &SchedConfig, deadline: &Deadline) -> Verdict {
    if r.pattern().is_linear() {
        let conflict =
            detect::read_update_conflict(r, u, cfg.semantics).expect("linearity checked");
        return Verdict {
            conflict,
            detector: Detector::PtimeLinearRead,
        };
    }
    match brute::decide_outcome(r, u, cfg.semantics, cfg.np_max_trees, deadline) {
        brute::SearchOutcome::Conflict(_) => Verdict {
            conflict: true,
            detector: Detector::WitnessSearch,
        },
        // The Lemma 11 bound was searched exhaustively: exact.
        brute::SearchOutcome::NoConflictWithin(_) => Verdict {
            conflict: false,
            detector: Detector::WitnessSearch,
        },
        brute::SearchOutcome::BudgetExceeded(_) => {
            Verdict::conservative(Detector::ConservativeBudget)
        }
        brute::SearchOutcome::DeadlineExceeded => {
            Verdict::conservative(Detector::ConservativeDeadline)
        }
    }
}

fn update_update(u1: &Update, u2: &Update, cfg: &SchedConfig, deadline: &Deadline) -> Verdict {
    let budget = UuBudget {
        max_nodes: cfg.np_max_nodes,
        max_trees: cfg.np_max_trees,
    };
    if let Some(c) = commutativity_deadline(u1, u2, budget, deadline) {
        return match c {
            Commutativity::Commute => Verdict {
                conflict: false,
                detector: Detector::PtimeLinearUpdates,
            },
            Commutativity::Conflict(_) => Verdict {
                conflict: true,
                detector: Detector::PtimeLinearUpdates,
            },
            Commutativity::Unknown => Verdict::conservative(Detector::ConservativeUndecided),
            Commutativity::DeadlineExceeded => {
                Verdict::conservative(Detector::ConservativeDeadline)
            }
        };
    }
    // Branching selection patterns: bounded search only.
    match find_noncommuting_witness_deadline(u1, u2, budget, deadline) {
        Outcome::Conflict(_) => Verdict {
            conflict: true,
            detector: Detector::WitnessSearch,
        },
        Outcome::NoConflictWithin(_) if cfg.trust_bounded_search => Verdict {
            conflict: false,
            detector: Detector::WitnessSearch,
        },
        // "No witness within budget" without trust: undecidable route,
        // not a resource failure.
        Outcome::NoConflictWithin(_) => Verdict::conservative(Detector::ConservativeUndecided),
        Outcome::BudgetExceeded(_) => Verdict::conservative(Detector::ConservativeBudget),
        Outcome::DeadlineExceeded => Verdict::conservative(Detector::ConservativeDeadline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::{Delete, Insert, Read};
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn cfg() -> SchedConfig {
        SchedConfig::default()
    }

    fn read(p: &str) -> Op {
        Op::Read(Read::new(parse(p).unwrap()))
    }

    fn ins(p: &str, x: &str) -> Op {
        Op::Update(Update::Insert(Insert::new(
            parse(p).unwrap(),
            text::parse(x).unwrap(),
        )))
    }

    fn del(p: &str) -> Op {
        Op::Update(Update::Delete(Delete::new(parse(p).unwrap()).unwrap()))
    }

    #[test]
    fn reads_never_conflict() {
        let v = analyze_pair(&read("a//b"), &read("a[x][y]"), &cfg());
        assert!(!v.conflict);
        assert_eq!(v.detector, Detector::Trivial);
    }

    #[test]
    fn section1_pair_routes_ptime() {
        let v = analyze_pair(&read("x//C"), &ins("x/B", "C"), &cfg());
        assert!(v.conflict);
        assert_eq!(v.detector, Detector::PtimeLinearRead);
        let v2 = analyze_pair(&read("x//D"), &ins("x/B", "C"), &cfg());
        assert!(!v2.conflict);
    }

    #[test]
    fn symmetric_in_argument_order() {
        let (r, u) = (read("x//C"), ins("x/B", "C"));
        assert_eq!(analyze_pair(&r, &u, &cfg()), analyze_pair(&u, &r, &cfg()));
    }

    #[test]
    fn branching_read_routes_np_side() {
        let v = analyze_pair(&read("a[b][c]"), &ins("a[b]", "c"), &cfg());
        assert!(v.conflict);
        assert_eq!(v.detector, Detector::WitnessSearch);
        // Label-disjoint pair small enough for an exact search within
        // the Lemma 11 bound: independence is proven, not assumed.
        let v2 = analyze_pair(&read("a[b][c]"), &ins("d", "f"), &cfg());
        assert!(!v2.conflict);
        assert_eq!(v2.detector, Detector::WitnessSearch);
    }

    #[test]
    fn oversized_np_instance_is_conservative() {
        let mut c = cfg();
        c.np_max_trees = 10; // starve the search
        let v = analyze_pair(&read("a[b]//c//d"), &ins("a//x[y][z]", "w"), &c);
        assert!(v.conflict);
        assert_eq!(v.detector, Detector::ConservativeBudget);
        assert!(v.detector.is_conservative());
    }

    #[test]
    fn starved_branching_updates_report_budget() {
        let mut c = cfg();
        c.np_max_trees = 5;
        // Branching update pattern routes NP-side; 5 trees is nowhere
        // near enough, so the search refuses before enumerating.
        let v = analyze_pair(&ins("a/b[q]", "c"), &del("a/z/w"), &c);
        assert!(v.conflict);
        assert_eq!(v.detector, Detector::ConservativeBudget);
    }

    #[test]
    fn expired_deadline_degrades_np_routes_only() {
        let dl = cxu_runtime::Deadline::after(std::time::Duration::ZERO);
        // Branching read: NP-side search polls the deadline and trips.
        let v = analyze_pair_deadline(&read("a[b][c]"), &ins("a[b]", "c"), &cfg(), &dl);
        assert!(v.conflict);
        assert_eq!(v.detector, Detector::ConservativeDeadline);
        // Branching update pair: same degradation.
        let v2 = analyze_pair_deadline(&ins("a/b[q]", "c"), &del("a/z/w"), &cfg(), &dl);
        assert_eq!(v2.detector, Detector::ConservativeDeadline);
        // Linear routes are PTIME and never degrade, even at deadline 0.
        let v3 = analyze_pair_deadline(&read("x//C"), &ins("x/B", "C"), &cfg(), &dl);
        assert_eq!(v3.detector, Detector::PtimeLinearRead);
        let v4 = analyze_pair_deadline(&ins("a/b", "x"), &ins("a/c", "y"), &cfg(), &dl);
        assert_eq!(v4.detector, Detector::PtimeLinearUpdates);
        assert!(!v4.conflict);
    }

    #[test]
    fn cancel_token_degrades_like_a_deadline() {
        let token = cxu_runtime::CancelToken::new();
        token.cancel();
        let dl = cxu_runtime::Deadline::never().with_token(&token);
        let v = analyze_pair_deadline(&read("a[b][c]"), &ins("a[b]", "c"), &cfg(), &dl);
        assert_eq!(v.detector, Detector::ConservativeDeadline);
        assert!(v.conflict);
    }

    #[test]
    fn linear_updates_route_ptime() {
        let v = analyze_pair(&ins("a/b", "x"), &ins("a/c", "y"), &cfg());
        assert!(!v.conflict);
        assert_eq!(v.detector, Detector::PtimeLinearUpdates);
        let v2 = analyze_pair(&ins("a/b", "c"), &ins("a/b/c", "q"), &cfg());
        assert!(v2.conflict);
        assert_eq!(v2.detector, Detector::PtimeLinearUpdates);
    }

    #[test]
    fn disjoint_linear_deletes_commute() {
        let v = analyze_pair(&del("a/b"), &del("a/c"), &cfg());
        assert!(!v.conflict);
        assert_eq!(v.detector, Detector::PtimeLinearUpdates);
        // Nested deletes commute semantically, but the linear analysis
        // answers Unknown (cross-conflicts fire, no witness found), so
        // the scheduler stays conservative.
        let v2 = analyze_pair(&del("a/b"), &del("a/b/c"), &cfg());
        assert!(v2.conflict);
        assert_eq!(v2.detector, Detector::ConservativeUndecided);
    }

    #[test]
    fn branching_updates_bounded_search() {
        // A branching delete pattern forces the NP-side update-update
        // route. Non-commuting pair: found witness is definite.
        let v = analyze_pair(&ins("a/b[q]", "c"), &ins("a/b/c", "z"), &cfg());
        assert_eq!(v.detector, Detector::WitnessSearch);
        assert!(v.conflict);
        // A commuting-looking pair is conservative by default…
        let v2 = analyze_pair(&ins("a/b[q]", "c"), &del("a/z/w"), &cfg());
        assert_eq!(v2.detector, Detector::ConservativeUndecided);
        assert!(v2.conflict);
        // …and trusted only on request.
        let mut c = cfg();
        c.trust_bounded_search = true;
        let v3 = analyze_pair(&ins("a/b[q]", "c"), &del("a/z/w"), &c);
        assert_eq!(v3.detector, Detector::WitnessSearch);
        assert!(!v3.conflict);
    }
}
