//! # cxu-sched — batch conflict-graph scheduling
//!
//! Takes a *batch* of XML read/update operations (a pidgin
//! [`cxu_gen::program::Program`] or a plain op list) and schedules it
//! into **conflict-free rounds**: operations inside a round are pairwise
//! proven independent and may execute concurrently or in any order;
//! rounds execute in sequence. The schedule is observationally
//! equivalent to serial execution under the paper's value semantics.
//!
//! Pipeline:
//!
//! 1. **Intern** ([`intern`]) — operations are hash-consed into
//!    canonical keys (pattern shape up to unordered-sibling reorder,
//!    payload shape, op kind), so repeated shapes share one identity.
//! 2. **Pairwise analysis** ([`pairwise`]) — each distinct pair key is
//!    decided once: PTIME detectors when applicable (§4 read–update for
//!    linear reads, §6 linear update–update), bounded NP-side witness
//!    search otherwise (§5, Lemma 11), conservative conflict when the
//!    budget runs out. Verdicts are memoized across batches
//!    ([`engine::Scheduler`]); distinct new pairs fan out over
//!    `std::thread::scope` workers.
//! 3. **Conflict graph** ([`graph`]) — every pair recorded with its
//!    verdict, deciding detector, and cache provenance; Graphviz export.
//! 4. **Rounds** ([`rounds`]) — ASAP greedy coloring preserving the
//!    program order of every conflicting pair.
//! 5. **Validation** ([`validate`]) — interpreter-based check that any
//!    schedule-compatible order observes the same values as serial.
//!
//! ```
//! use cxu_sched::Scheduler;
//! use cxu_gen::parse::parse_program;
//!
//! let p = parse_program("y = read $x//A; insert $x/B, C; z = read $x//C").unwrap();
//! let out = Scheduler::default().run_program(&p);
//! assert_eq!(out.schedule.rounds, vec![vec![0, 1], vec![2]]);
//! assert_eq!(out.stats.conflict_edges, 1);
//! ```

pub mod engine;
pub mod graph;
pub mod intern;
pub mod op;
pub mod pairwise;
pub mod rounds;
pub mod validate;

pub use cxu_runtime as runtime;
pub use cxu_runtime::{CancelToken, Deadline};
pub use engine::{BatchResult, PairDecision, PairLookup, PairTask, Scheduler, TxnPairReport};
pub use graph::{ConflictGraph, Edge};
pub use intern::{op_route_hash, pair_route_hash, OpInfo, PairKey};
pub use op::{ops_of_program, Op};
pub use pairwise::{
    analyze_pair, analyze_pair_deadline, analyze_pair_info, prefilter_no_conflict, Detector,
    Verdict,
};
pub use rounds::{schedule, Schedule};

use cxu_ops::Semantics;
use std::time::Duration;

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Conflict semantics for read–update pairs. `Value` matches the
    /// observational-equivalence guarantee the scheduler advertises
    /// (reads observe value multisets); it is also the paper's notion
    /// under which linear reads make Node/Tree/Value coincide (Lemma 2).
    pub semantics: Semantics,
    /// Worker threads for pairwise analysis (≥ 1).
    pub jobs: usize,
    /// NP-side budget: maximum witness-tree node count for the
    /// update–update bounded search.
    pub np_max_nodes: usize,
    /// NP-side budget: maximum candidate trees enumerated per search.
    pub np_max_trees: u128,
    /// Trust "no witness within budget" answers from the *update–update*
    /// bounded search as non-conflicts. Off by default: unlike the
    /// read–update side (Lemma 11), there is no completeness bound, so
    /// trusting it trades soundness for parallelism.
    pub trust_bounded_search: bool,
    /// Per-pair time slice for the NP-side searches. A pair whose
    /// analysis outlives its slice degrades to a *conservative conflict*
    /// ([`pairwise::Detector::ConservativeDeadline`]) instead of
    /// stalling the batch. `None` (the default) runs unbounded.
    pub pair_deadline: Option<Duration>,
    /// Isolate detector panics: a pair whose analysis panics degrades to
    /// a conservative conflict
    /// ([`pairwise::Detector::ConservativePanic`]) instead of tearing
    /// down the scheduler. On by default; disable to let panics
    /// propagate (e.g. under a debugger).
    pub catch_panics: bool,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            semantics: Semantics::Value,
            jobs: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            np_max_nodes: 5,
            np_max_trees: 200_000,
            trust_bounded_search: false,
            pair_deadline: None,
            catch_panics: true,
        }
    }
}

/// Counters for one analyzed batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Operations in the batch.
    pub ops: usize,
    /// Total pairs (`n·(n−1)/2`).
    pub pairs_total: usize,
    /// Pairs decided without any detector (read–read, identical keys).
    pub trivial: usize,
    /// Distinct pair keys actually run through a detector.
    pub pairs_analyzed: usize,
    /// Pairs served from the memo cache (within-batch repeats and
    /// previous batches).
    pub cache_hits: usize,
    /// Distinct pair keys discharged by the sound batch pre-filter
    /// (proven non-conflicts that never entered a detector).
    pub prefilter_skips: usize,
    /// Edges decided by the §4 PTIME read–update detector.
    pub ptime_linear_read: usize,
    /// Edges decided by the §6 linear update–update analysis.
    pub ptime_linear_updates: usize,
    /// Edges decided by bounded NP-side witness search.
    pub witness_search: usize,
    /// Edges conservatively marked conflicting, for any reason (the sum
    /// of the `degraded_*` breakdown plus undecidable routes).
    pub conservative: usize,
    /// Conservative edges caused by candidate-count budget exhaustion.
    pub degraded_budget: usize,
    /// Conservative edges caused by an expired pair deadline or a fired
    /// cancellation token.
    pub degraded_deadline: usize,
    /// Conservative edges caused by a detector panic (isolated by the
    /// engine's `catch_unwind` guard).
    pub degraded_panic: usize,
    /// Conflicting pairs.
    pub conflict_edges: usize,
    /// Rounds in the resulting schedule.
    pub rounds: usize,
    /// Distinct interned pattern shapes seen so far.
    pub distinct_shapes: usize,
    /// Worker threads used.
    pub jobs: usize,
}

impl std::fmt::Display for SchedStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "ops:                  {}", self.ops)?;
        writeln!(f, "pairs:                {}", self.pairs_total)?;
        writeln!(f, "  trivial:            {}", self.trivial)?;
        writeln!(f, "  analyzed:           {}", self.pairs_analyzed)?;
        writeln!(f, "  cache hits:         {}", self.cache_hits)?;
        writeln!(f, "  prefilter skips:    {}", self.prefilter_skips)?;
        writeln!(f, "detectors (by edge):")?;
        writeln!(f, "  ptime read-update:  {}", self.ptime_linear_read)?;
        writeln!(f, "  ptime update-update:{}", self.ptime_linear_updates)?;
        writeln!(f, "  witness search:     {}", self.witness_search)?;
        writeln!(f, "  conservative:       {}", self.conservative)?;
        writeln!(f, "    budget exhausted: {}", self.degraded_budget)?;
        writeln!(f, "    deadline expired: {}", self.degraded_deadline)?;
        writeln!(f, "    detector panic:   {}", self.degraded_panic)?;
        writeln!(f, "conflict edges:       {}", self.conflict_edges)?;
        writeln!(f, "rounds:               {}", self.rounds)?;
        writeln!(f, "distinct shapes:      {}", self.distinct_shapes)?;
        write!(f, "jobs:                 {}", self.jobs)
    }
}
