//! The three operations of §3 with reference-based (mutating) semantics.

use cxu_pattern::{eval, Pattern, PatternError};
use cxu_tree::{NodeId, Tree};

/// `READ_p(t) = ⟦p⟧(t)`: projects a set of nodes from a tree.
#[derive(Clone, Debug)]
pub struct Read {
    pattern: Pattern,
}

impl Read {
    /// A read over pattern `p ∈ P^{//,[],*}`.
    pub fn new(pattern: Pattern) -> Read {
        Read { pattern }
    }

    /// The read's pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Evaluates the read, returning node ids (sorted, deduplicated).
    pub fn eval(&self, t: &Tree) -> Vec<NodeId> {
        eval::eval(&self.pattern, t)
    }

    /// `⟦p⟧_T(t)`: the returned subtrees as independent trees (used by
    /// value-semantics comparisons and by callers that want copies).
    pub fn eval_subtrees(&self, t: &Tree) -> Vec<Tree> {
        self.eval(t)
            .into_iter()
            .map(|n| t.subtree_to_tree(n))
            .collect()
    }
}

/// `INSERT_{p,X}(t)`: grafts a fresh copy of `X` as a child of every node
/// in `⟦p⟧(t)` (the *insertion points*). If the pattern selects nothing,
/// the tree is unchanged.
#[derive(Clone, Debug)]
pub struct Insert {
    pattern: Pattern,
    subtree: Tree,
}

impl Insert {
    /// An insertion of `subtree` at every node selected by `pattern`.
    pub fn new(pattern: Pattern, subtree: Tree) -> Insert {
        Insert { pattern, subtree }
    }

    /// The insertion's pattern `p`.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The inserted tree `X`.
    pub fn subtree(&self) -> &Tree {
        &self.subtree
    }

    /// Applies the insertion in place; returns the insertion points.
    ///
    /// Per §3, the points are all computed **before** any graft: the
    /// operation evaluates `p` on `t`, then inserts. (Grafting first could
    /// otherwise create new matches; the two-phase order makes the
    /// operation well-defined.)
    pub fn apply(&self, t: &mut Tree) -> Vec<NodeId> {
        let points = eval::eval(&self.pattern, t);
        for &n in &points {
            t.graft(n, &self.subtree);
        }
        points
    }

    /// Applies to a copy, returning `(I(t), insertion points)`. Node ids
    /// of the original survive into the copy unchanged.
    pub fn apply_to_copy(&self, t: &Tree) -> (Tree, Vec<NodeId>) {
        let mut t2 = t.clone();
        let points = self.apply(&mut t2);
        (t2, points)
    }

    /// Like [`Insert::apply`], but returns `(insertion point, root of the
    /// grafted copy)` pairs — callers that maintain incremental state
    /// need to know where each fresh `X_i` landed.
    pub fn apply_indexed(&self, t: &mut Tree) -> Vec<(NodeId, NodeId)> {
        let points = cxu_pattern::eval::eval(&self.pattern, t);
        points
            .into_iter()
            .map(|n| (n, t.graft(n, &self.subtree)))
            .collect()
    }
}

/// `DELETE_p(t)`: removes the subtree rooted at every node in `⟦p⟧(t)`
/// (the *deletion points*). The pattern's output must not be its root —
/// this keeps the result a tree (§3).
#[derive(Clone, Debug)]
pub struct Delete {
    pattern: Pattern,
}

impl Delete {
    /// A deletion over `pattern`; rejects patterns whose output node is
    /// the root (`𝒪(p) ≠ ROOT(p)` is required by the paper).
    pub fn new(pattern: Pattern) -> Result<Delete, PatternError> {
        if pattern.output() == pattern.root() {
            return Err(PatternError::OutputIsRoot);
        }
        Ok(Delete { pattern })
    }

    /// The deletion's pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Applies the deletion in place; returns the deletion points (which
    /// are tombstoned afterwards). Points nested under other points are
    /// removed by the outermost deletion; `remove_subtree` treats the
    /// inner calls as no-ops.
    pub fn apply(&self, t: &mut Tree) -> Vec<NodeId> {
        let points = eval::eval(&self.pattern, t);
        for &n in &points {
            t.remove_subtree(n)
                .expect("deletion point is never the root: 𝒪(p) ≠ ROOT(p)");
        }
        points
    }

    /// Applies to a copy, returning `(D(t), deletion points)`.
    pub fn apply_to_copy(&self, t: &Tree) -> (Tree, Vec<NodeId>) {
        let mut t2 = t.clone();
        let points = self.apply(&mut t2);
        (t2, points)
    }
}

/// An update operation — the paper's two mutators, unified where the
/// conflict machinery treats them symmetrically.
#[derive(Clone, Debug)]
pub enum Update {
    /// An insertion.
    Insert(Insert),
    /// A deletion.
    Delete(Delete),
}

impl Update {
    /// The update's selection pattern.
    pub fn pattern(&self) -> &Pattern {
        match self {
            Update::Insert(i) => i.pattern(),
            Update::Delete(d) => d.pattern(),
        }
    }

    /// Applies the update in place; returns the selected points.
    pub fn apply(&self, t: &mut Tree) -> Vec<NodeId> {
        match self {
            Update::Insert(i) => i.apply(t),
            Update::Delete(d) => d.apply(t),
        }
    }

    /// Applies to a copy.
    pub fn apply_to_copy(&self, t: &Tree) -> (Tree, Vec<NodeId>) {
        let mut t2 = t.clone();
        let points = self.apply(&mut t2);
        (t2, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    #[test]
    fn read_returns_node_ids() {
        let t = text::parse("a(b b c)").unwrap();
        let r = Read::new(parse("a/b").unwrap());
        let hits = r.eval(&t);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|&n| t.label(n).as_str() == "b"));
    }

    #[test]
    fn read_subtrees() {
        let t = text::parse("a(b(x) b(y))").unwrap();
        let r = Read::new(parse("a/b").unwrap());
        let subs = r.eval_subtrees(&t);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].live_count(), 2);
    }

    #[test]
    fn insert_at_every_point() {
        // The paper's Figure 1 example: restock every low-quantity book.
        let mut t = text::parse("inv(book(q) book(q) book)").unwrap();
        let ins = Insert::new(
            parse("inv/book[q]").unwrap(),
            text::parse("restock").unwrap(),
        );
        let points = ins.apply(&mut t);
        assert_eq!(points.len(), 2);
        let restocked = t
            .nodes()
            .filter(|&n| t.label(n).as_str() == "restock")
            .count();
        assert_eq!(restocked, 2);
        assert_eq!(t.live_count(), 6 + 2);
    }

    #[test]
    fn insert_copies_are_disjoint() {
        let mut t = text::parse("a(b b)").unwrap();
        let ins = Insert::new(parse("a/b").unwrap(), text::parse("x(y)").unwrap());
        ins.apply(&mut t);
        let xs: Vec<_> = t.nodes().filter(|&n| t.label(n).as_str() == "x").collect();
        assert_eq!(xs.len(), 2);
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn insert_no_match_no_change() {
        let mut t = text::parse("a(b)").unwrap();
        let before = t.live_count();
        let ins = Insert::new(parse("a/zzz").unwrap(), text::parse("x").unwrap());
        let points = ins.apply(&mut t);
        assert!(points.is_empty());
        assert_eq!(t.live_count(), before);
        assert!(t.mod_sites().is_empty());
    }

    #[test]
    fn insert_points_computed_before_grafting() {
        // Inserting <b/> under every a//b must not cascade into the
        // freshly inserted b's.
        let mut t = text::parse("a(b)").unwrap();
        let ins = Insert::new(parse("a//b").unwrap(), text::parse("b").unwrap());
        let points = ins.apply(&mut t);
        assert_eq!(points.len(), 1);
        assert_eq!(t.live_count(), 3);
    }

    #[test]
    fn delete_removes_subtrees() {
        let mut t = text::parse("a(b(x y) c)").unwrap();
        let del = Delete::new(parse("a/b").unwrap()).unwrap();
        let points = del.apply(&mut t);
        assert_eq!(points.len(), 1);
        assert_eq!(t.live_count(), 2);
    }

    #[test]
    fn delete_rejects_root_output() {
        assert!(Delete::new(parse("a").unwrap()).is_err());
        assert!(Delete::new(parse("a/b").unwrap()).is_ok());
    }

    #[test]
    fn delete_nested_points() {
        // a//b selects nested b's; outer deletion removes the inner point.
        let mut t = text::parse("a(b(b))").unwrap();
        let del = Delete::new(parse("a//b").unwrap()).unwrap();
        let points = del.apply(&mut t);
        assert_eq!(points.len(), 2);
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn apply_to_copy_preserves_original() {
        let t = text::parse("a(b)").unwrap();
        let ins = Insert::new(parse("a/b").unwrap(), text::parse("c").unwrap());
        let (t2, points) = ins.apply_to_copy(&t);
        assert_eq!(t.live_count(), 2);
        assert_eq!(t2.live_count(), 3);
        // Shared ids: the insertion point is a node of the original.
        assert!(t.is_alive(points[0]));
        assert_eq!(t.label(points[0]), t2.label(points[0]));
    }

    #[test]
    fn update_enum_dispatch() {
        let t = text::parse("a(b)").unwrap();
        let ins = Update::Insert(Insert::new(
            parse("a/b").unwrap(),
            text::parse("c").unwrap(),
        ));
        let del = Update::Delete(Delete::new(parse("a/b").unwrap()).unwrap());
        let (ti, _) = ins.apply_to_copy(&t);
        let (td, _) = del.apply_to_copy(&t);
        assert_eq!(ti.live_count(), 3);
        assert_eq!(td.live_count(), 1);
    }

    #[test]
    fn insert_mod_journal_sites_are_points() {
        let mut t = text::parse("a(b b)").unwrap();
        let ins = Insert::new(parse("a/b").unwrap(), text::parse("x").unwrap());
        let points = ins.apply(&mut t);
        let sites: Vec<_> = t.mod_sites().iter().map(|m| m.site).collect();
        assert_eq!(sites, points);
    }
}
