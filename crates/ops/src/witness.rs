//! Lemma 1: polynomial-time witness checking.
//!
//! Given a concrete tree `t`, a read `R`, and an update `u`, decide
//! whether `t` *witnesses* a conflict between `R` and `u` under each of
//! the three semantics:
//!
//! * **node**: `R(u(t)) ≠ R(t)` as sets of node ids;
//! * **tree**: the node sets differ, or some returned node's subtree was
//!   modified by the update (the paper's per-node "modified" flag — we
//!   compute it from the tree's modification journal);
//! * **value**: `⟦p⟧_T(u(t)) ≇ ⟦p⟧_T(t)` — the *sets* of returned
//!   subtrees, compared up to labeled-tree isomorphism via AHU canonical
//!   codes.
//!
//! These checks are the verifier inside the NP membership proofs
//! (Theorems 3 and 5) and the oracle for brute-force conflict search.

use crate::{Delete, Insert, Read, Semantics, Update};
use cxu_tree::iso::Canonizer;
use cxu_tree::Tree;

/// Does `t` witness a read-insert conflict (Definitions 3 and 5)?
pub fn witnesses_insert_conflict(r: &Read, i: &Insert, t: &Tree, sem: Semantics) -> bool {
    witnesses_update_conflict(r, &Update::Insert(i.clone()), t, sem)
}

/// Does `t` witness a read-delete conflict (Definitions 4 and 6)?
pub fn witnesses_delete_conflict(r: &Read, d: &Delete, t: &Tree, sem: Semantics) -> bool {
    witnesses_update_conflict(r, &Update::Delete(d.clone()), t, sem)
}

/// Unified witness check for any update.
pub fn witnesses_update_conflict(r: &Read, u: &Update, t: &Tree, sem: Semantics) -> bool {
    let before = r.eval(t);
    // Work on a copy with a clean journal so only *this* update counts as
    // a modification.
    let mut t2 = t.clone();
    t2.clear_mods();
    u.apply(&mut t2);
    let after = r.eval(&t2);

    match sem {
        Semantics::Node => before != after,
        Semantics::Tree => before != after || after.iter().any(|&n| t2.subtree_modified(n)),
        Semantics::Value => {
            let mut canon = Canonizer::new();
            let mut codes_before: Vec<_> = before.iter().map(|&n| canon.code(t, n)).collect();
            let mut codes_after: Vec<_> = after.iter().map(|&n| canon.code(&t2, n)).collect();
            codes_before.sort_unstable();
            codes_before.dedup();
            codes_after.sort_unstable();
            codes_after.dedup();
            codes_before != codes_after
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn read(p: &str) -> Read {
        Read::new(parse(p).unwrap())
    }

    fn insert(p: &str, x: &str) -> Insert {
        Insert::new(parse(p).unwrap(), text::parse(x).unwrap())
    }

    fn delete(p: &str) -> Delete {
        Delete::new(parse(p).unwrap()).unwrap()
    }

    #[test]
    fn section1_example_conflict() {
        // read $x//C vs insert $x/B, <C/>: conflicts on x(B).
        let r = read("x//C");
        let i = insert("x/B", "C");
        let w = text::parse("x(B)").unwrap();
        assert!(witnesses_insert_conflict(&r, &i, &w, Semantics::Node));
        // …but not on a tree without a B child.
        let w2 = text::parse("x(D)").unwrap();
        assert!(!witnesses_insert_conflict(&r, &i, &w2, Semantics::Node));
    }

    #[test]
    fn section1_example_no_conflict_read_d() {
        // read $x//D is untouched by insert $x/B, <C/>.
        let r = read("x//D");
        let i = insert("x/B", "C");
        for w in ["x(B)", "x(B(D))", "x(D(B))"] {
            let t = text::parse(w).unwrap();
            assert!(
                !witnesses_insert_conflict(&r, &i, &t, Semantics::Node),
                "{w}"
            );
        }
    }

    #[test]
    fn node_vs_tree_semantics() {
        // §3: R returns the root; I adds X under a B child. Node: no
        // conflict (the root id is unchanged). Tree: conflict (the
        // subtree rooted at the root was modified).
        let r = read("root");
        let i = insert("root/B", "X");
        let w = text::parse("root(B)").unwrap();
        assert!(!witnesses_insert_conflict(&r, &i, &w, Semantics::Node));
        assert!(witnesses_insert_conflict(&r, &i, &w, Semantics::Tree));
        // Value semantics also sees the new X below the returned root.
        assert!(witnesses_insert_conflict(&r, &i, &w, Semantics::Value));
    }

    #[test]
    fn figure3_reference_vs_value() {
        // Figure 3: D deletes root/delta; R reads root//gamma. With two
        // isomorphic gamma subtrees (one under delta, one elsewhere),
        // reference semantics sees a conflict, value semantics does not.
        let r = read("root//gamma");
        let d = delete("root/delta");
        let w = text::parse("root(delta(gamma) keep(gamma))").unwrap();
        assert!(witnesses_delete_conflict(&r, &d, &w, Semantics::Node));
        assert!(witnesses_delete_conflict(&r, &d, &w, Semantics::Tree));
        assert!(!witnesses_delete_conflict(&r, &d, &w, Semantics::Value));
    }

    #[test]
    fn value_conflict_when_unique_subtree_deleted() {
        let r = read("root//gamma");
        let d = delete("root/delta");
        // Only one gamma — deleting it changes the value too.
        let w = text::parse("root(delta(gamma) keep)").unwrap();
        assert!(witnesses_delete_conflict(&r, &d, &w, Semantics::Value));
    }

    #[test]
    fn delete_of_unrelated_subtree_no_conflict() {
        let r = read("a/b");
        let d = delete("a/c");
        let w = text::parse("a(b c)").unwrap();
        assert!(!witnesses_delete_conflict(&r, &d, &w, Semantics::Node));
        // Tree semantics: b's subtree untouched → still no conflict.
        assert!(!witnesses_delete_conflict(&r, &d, &w, Semantics::Tree));
        assert!(!witnesses_delete_conflict(&r, &d, &w, Semantics::Value));
    }

    #[test]
    fn tree_conflict_modified_below_returned_node() {
        // R returns a/b; I inserts under b's child c: the returned node
        // set is unchanged but the subtree is modified.
        let r = read("a/b");
        let i = insert("a/b/c", "x");
        let w = text::parse("a(b(c))").unwrap();
        assert!(!witnesses_insert_conflict(&r, &i, &w, Semantics::Node));
        assert!(witnesses_insert_conflict(&r, &i, &w, Semantics::Tree));
        assert!(witnesses_insert_conflict(&r, &i, &w, Semantics::Value));
    }

    #[test]
    fn value_no_conflict_isomorphic_replacement() {
        // Insert adds a second, isomorphic match: node semantics sees a
        // new id; value semantics sees the same set of subtrees.
        let r = read("a//m");
        let i = insert("a/spot", "m");
        let w = text::parse("a(m spot)").unwrap();
        assert!(witnesses_insert_conflict(&r, &i, &w, Semantics::Node));
        assert!(!witnesses_insert_conflict(&r, &i, &w, Semantics::Value));
    }

    #[test]
    fn original_tree_untouched_by_check() {
        let r = read("a//c");
        let i = insert("a/b", "c");
        let w = text::parse("a(b)").unwrap();
        let before = w.live_count();
        let _ = witnesses_insert_conflict(&r, &i, &w, Semantics::Node);
        assert_eq!(w.live_count(), before);
        assert!(w.mod_sites().is_empty());
    }

    #[test]
    fn update_enum_entry_point() {
        let r = read("a//c");
        let u = Update::Insert(insert("a/b", "c"));
        let w = text::parse("a(b)").unwrap();
        assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
    }

    #[test]
    fn pre_existing_journal_ignored() {
        // A tree that was already mutated must not count those earlier
        // modifications against the update being checked.
        let r = read("a/b");
        let i = insert("a/zzz", "x"); // matches nothing
        let mut w = text::parse("a(b)").unwrap();
        let b = w.children(w.root())[0];
        w.graft(b, &text::parse("noise").unwrap()); // journaled mutation
        assert!(!witnesses_insert_conflict(&r, &i, &w, Semantics::Tree));
    }
}
