//! # cxu-ops — read / insert / delete semantics and witness checking
//!
//! Implements §3 of *Conflicting XML Updates*:
//!
//! * [`Read`], [`Insert`], [`Delete`] — the three operations, with the
//!   paper's reference-based mutation semantics: an insertion grafts a
//!   fresh, id-disjoint copy of `X` at every node selected by its pattern;
//!   a deletion removes the subtree at every selected node (its pattern's
//!   output must not be the root, so the result stays a tree);
//! * [`Semantics`] — the three conflict semantics: **node** conflicts
//!   (Definitions 3–4), **tree** conflicts, and **value** conflicts
//!   (Definitions 5–6);
//! * [`witness`] — Lemma 1: given a candidate tree `t`, decide in
//!   polynomial time whether `t` witnesses a conflict under each
//!   semantics.
//!
//! ```
//! use cxu_ops::{Insert, Read, Semantics, witness};
//! use cxu_pattern::xpath;
//! use cxu_tree::text;
//!
//! // The paper's §1 example: reading $x//C conflicts with inserting
//! // <C/> under B children, on any tree that has a B child.
//! let read = Read::new(xpath::parse("x//C").unwrap());
//! let ins = Insert::new(xpath::parse("x/B").unwrap(), text::parse("C").unwrap());
//! let t = text::parse("x(B)").unwrap();
//! assert!(witness::witnesses_insert_conflict(&read, &ins, &t, Semantics::Node));
//! ```

mod ops;
pub mod witness;

pub use ops::{Delete, Insert, Read, Update};

/// Which notion of "the read's result changed" a conflict check uses (§3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Semantics {
    /// Reference-based, node sets: `R(u(t)) ≠ R(t)` as sets of node ids
    /// (Definitions 3–4). The semantics the paper focuses on.
    Node,
    /// Reference-based, subtrees: the returned *trees* must also be
    /// untouched — a node conflict, or a returned node whose subtree was
    /// modified, is a tree conflict.
    Tree,
    /// Value-based: the sets of returned subtrees must be isomorphic
    /// (Definitions 5–6) — `⟦p⟧_T(u(t)) ≅ ⟦p⟧_T(t)`.
    Value,
}

impl Semantics {
    /// All three semantics, for exhaustive test sweeps.
    pub const ALL: [Semantics; 3] = [Semantics::Node, Semantics::Tree, Semantics::Value];

    /// The wire name (`node | tree | value`), matching the protocol's
    /// `semantics` field.
    pub fn name(self) -> &'static str {
        match self {
            Semantics::Node => "node",
            Semantics::Tree => "tree",
            Semantics::Value => "value",
        }
    }
}
