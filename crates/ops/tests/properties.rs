//! Property tests for operation semantics and witness checking.

// Gated: needs the external `proptest` crate (see the workspace
// Cargo.toml note on hermetic builds).
#![cfg(feature = "proptest")]

use cxu_ops::witness::witnesses_update_conflict;
use cxu_ops::{Delete, Insert, Read, Semantics, Update};
use cxu_pattern::{eval, xpath, Axis, Pattern};
use cxu_tree::{NodeId, Symbol, Tree};
use proptest::prelude::*;

/// Structural random tree (ops sits below cxu-gen, so build inline).
fn arb_tree() -> impl Strategy<Value = Tree> {
    (1usize..20).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..3, n),
            proptest::collection::vec(proptest::num::u32::ANY, n.saturating_sub(1)),
        )
            .prop_map(move |(labels, parents)| {
                let lbl = |i: usize| Symbol::intern(&format!("o{}", labels[i % labels.len()]));
                let mut t = Tree::new(lbl(0));
                let mut ids: Vec<NodeId> = vec![t.root()];
                for (i, &p) in parents.iter().enumerate() {
                    let parent = ids[(p as usize) % ids.len()];
                    ids.push(t.build_child(parent, lbl(i + 1)));
                }
                t
            })
    })
}

/// Small random linear pattern over the same alphabet.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    proptest::collection::vec((0usize..4, proptest::bool::ANY), 1..4).prop_map(|spec| {
        let lbl = |k: usize| -> Option<Symbol> {
            if k == 3 {
                None
            } else {
                Some(Symbol::intern(&format!("o{k}")))
            }
        };
        let mut p = Pattern::new(lbl(spec[0].0));
        let mut cur = p.root();
        for &(k, desc) in &spec[1..] {
            let axis = if desc { Axis::Descendant } else { Axis::Child };
            cur = p.add_child(cur, axis, lbl(k));
        }
        p.set_output(cur);
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// INSERT is monotone on reads: R(t) ⊆ R(I(t)) as node-id sets.
    #[test]
    fn insert_monotone_for_reads(t in arb_tree(), rp in arb_pattern(), ip in arb_pattern()) {
        let r = Read::new(rp);
        let i = Insert::new(ip, Tree::new("o1"));
        let before = r.eval(&t);
        let (after_tree, _) = i.apply_to_copy(&t);
        let after = r.eval(&after_tree);
        for n in &before {
            prop_assert!(after.contains(n), "insert removed a read result");
        }
    }

    /// DELETE is antitone: R(D(t)) ⊆ R(t).
    #[test]
    fn delete_antitone_for_reads(t in arb_tree(), rp in arb_pattern(), dp in arb_pattern()) {
        prop_assume!(dp.output() != dp.root());
        let r = Read::new(rp);
        let d = Delete::new(dp).unwrap();
        let before = r.eval(&t);
        let (after_tree, _) = d.apply_to_copy(&t);
        let after = r.eval(&after_tree);
        for n in &after {
            prop_assert!(before.contains(n), "delete created a read result");
        }
    }

    /// Node conflicts imply tree conflicts on every concrete witness
    /// (the §3 hierarchy).
    #[test]
    fn node_conflict_implies_tree_conflict(
        t in arb_tree(),
        rp in arb_pattern(),
        up in arb_pattern(),
        deletion in proptest::bool::ANY,
    ) {
        let r = Read::new(rp);
        let u = if deletion {
            if up.output() == up.root() { return Ok(()); }
            Update::Delete(Delete::new(up).unwrap())
        } else {
            Update::Insert(Insert::new(up, Tree::new("o2")))
        };
        if witnesses_update_conflict(&r, &u, &t, Semantics::Node) {
            prop_assert!(
                witnesses_update_conflict(&r, &u, &t, Semantics::Tree),
                "node conflict without tree conflict"
            );
        }
    }

    /// Value conflicts imply tree conflicts on every concrete witness
    /// (isomorphism differences require reference differences).
    #[test]
    fn value_conflict_implies_tree_conflict(
        t in arb_tree(),
        rp in arb_pattern(),
        up in arb_pattern(),
    ) {
        let r = Read::new(rp);
        let u = Update::Insert(Insert::new(up, Tree::new("o0")));
        if witnesses_update_conflict(&r, &u, &t, Semantics::Value) {
            prop_assert!(
                witnesses_update_conflict(&r, &u, &t, Semantics::Tree),
                "value conflict without tree conflict"
            );
        }
    }

    /// Applying an insert twice adds twice the material at the first
    /// application's points — and the points of the second run contain
    /// the first run's points (monotonicity of the selection).
    #[test]
    fn insert_idempotence_structure(t in arb_tree(), ip in arb_pattern()) {
        let i = Insert::new(ip, Tree::new("o1"));
        let (t1, p1) = i.apply_to_copy(&t);
        let (t2, p2) = i.apply_to_copy(&t1);
        prop_assert!(p2.len() >= p1.len());
        for n in &p1 {
            prop_assert!(p2.contains(n));
        }
        prop_assert_eq!(t2.live_count(), t1.live_count() + p2.len());
    }

    /// The witness checker never flags a no-op update (pattern matches
    /// nothing on this tree).
    #[test]
    fn noop_update_never_witnesses(t in arb_tree(), rp in arb_pattern()) {
        let r = Read::new(rp);
        let never = xpath::parse("zzz-never/q").unwrap();
        let u = Update::Insert(Insert::new(never, Tree::new("o0")));
        for sem in Semantics::ALL {
            prop_assert!(!witnesses_update_conflict(&r, &u, &t, sem));
        }
    }

    /// Evaluation results are always live, sorted, and within the tree.
    #[test]
    fn eval_results_wellformed(t in arb_tree(), p in arb_pattern()) {
        let hits = eval::eval(&p, &t);
        for w in hits.windows(2) {
            prop_assert!(w[0] < w[1], "sorted, deduplicated");
        }
        for n in &hits {
            prop_assert!(t.is_alive(*n));
        }
    }
}
