//! The metrics registry: named atomic counters and fixed log₂-bucket
//! histograms, with deterministic text/JSON snapshots.
//!
//! Everything is `'static`: a metric, once registered, lives for the
//! process (the handles are leaked boxes), so hot paths hold plain
//! `&'static` references and pay one relaxed atomic op per update. The
//! registry itself is only locked at registration and snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter (normally obtained via
    /// [`Registry::counter`], not constructed directly).
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level that moves both ways (in-flight requests, queue depth).
/// Unlike a [`Counter`], a gauge reports a *state*, not a rate: snapshot
/// deltas keep the later level instead of subtracting.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zeroed gauge (normally obtained via [`Registry::gauge`]).
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `b` counts samples whose value
/// has exactly `b` significant bits, i.e. `v ∈ [2^(b−1), 2^b)`, with
/// bucket 0 holding zeros. 64 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log₂-bucket histogram over `u64` samples (typically
/// nanoseconds). Recording is two relaxed atomic adds plus one for the
/// bucket; no allocation, no locking.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram (normally obtained via
    /// [`Registry::histogram`]).
    pub const fn new() -> Histogram {
        // `[AtomicU64::new(0); N]` needs a const item to repeat; each
        // repetition is a fresh atomic, not a shared one.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records the duration since `start`, in nanoseconds.
    #[inline]
    pub fn record_since(&self, start: std::time::Instant) {
        self.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps on overflow; fine for deltas).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.wrapping_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            buckets: std::array::from_fn(|i| self.buckets[i].wrapping_sub(earlier.buckets[i])),
        }
    }
}

/// The global registry of named metrics. Obtain it via [`registry`];
/// obtain handles via [`crate::counter!`] / [`crate::histogram!`] (which
/// cache per call site) or [`Registry::counter`] / [`Registry::histogram`].
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl Registry {
    /// The counter named `name`, registering it on first use. The cell
    /// is leaked deliberately: metrics are a bounded set of named
    /// statics that live for the process.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// A deterministic (name-sorted) copy of every metric's value.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&n, c)| (n, c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&n, g)| (n, g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&n, h)| (n, h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of the whole registry, used for reporting and for
/// before/after deltas around a measured region.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl Snapshot {
    /// The counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's level, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram's state, `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Metric-wise `self − earlier` (names only in `earlier` drop out:
    /// a metric that existed before the region and never moved inside
    /// it still appears, with value 0). Gauges are *levels*, not rates,
    /// so the delta keeps the later snapshot's level unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&n, &v)| (n, v.wrapping_sub(earlier.counter(n))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(&n, h)| match earlier.histograms.get(n) {
                Some(e) => (n, h.delta(e)),
                None => (n, h.clone()),
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Renders as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {"count", "sum", "mean", "buckets": [[lo, n], ...]}}}`.
    /// Bucket entries list only non-empty buckets as
    /// `[lower_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{n}\": {v}"));
        }
        s.push_str("}, \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{n}\": {v}"));
        }
        s.push_str("}, \"histograms\": {");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{n}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.mean()
            ));
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    s.push_str(", ");
                }
                first = false;
                let lo: u64 = if b == 0 { 0 } else { 1u64 << (b - 1) };
                s.push_str(&format!("[{lo}, {c}]"));
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }
}

impl std::fmt::Display for Snapshot {
    /// A text table: counters, then gauges, then histogram summaries.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0);
        for (n, v) in &self.counters {
            writeln!(f, "{n:<width$}  {v}")?;
        }
        for (n, v) in &self.gauges {
            writeln!(f, "{n:<width$}  {v}")?;
        }
        for (n, h) in &self.histograms {
            writeln!(
                f,
                "{n:<width$}  count={} sum={} mean={}",
                h.count,
                h.sum,
                h.mean()
            )?;
        }
        Ok(())
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// A `&'static Counter` for the given name, registered once and cached
/// per call site (the registry lock is not touched after the first hit).
///
/// The name is evaluated **once** per call site — pass a literal, not a
/// runtime-varying expression (a varying name would silently keep
/// resolving to whichever counter the site registered first). Branch on
/// the dynamic value and give each branch its own `counter!` instead.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __CXU_OBS_C: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *__CXU_OBS_C.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// A `&'static Gauge` for the given name, registered once and cached
/// per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __CXU_OBS_G: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *__CXU_OBS_G.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// A `&'static Histogram` for the given name, registered once and
/// cached per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __CXU_OBS_H: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *__CXU_OBS_H.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let a = registry().counter("test.metrics.idem");
        let b = registry().counter("test.metrics.idem");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn macro_caches_handle() {
        let a = crate::counter!("test.metrics.macro");
        let b = crate::counter!("test.metrics.macro");
        a.add(3);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1: [1, 2)
        h.record(2); // bucket 2: [2, 4)
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.mean(), 206);
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn snapshot_delta_isolates_a_region() {
        let c = registry().counter("test.metrics.delta");
        c.add(5);
        let before = registry().snapshot();
        c.add(7);
        let h = registry().histogram("test.metrics.delta_ns");
        h.record(100);
        let delta = registry().snapshot().delta(&before);
        assert_eq!(delta.counter("test.metrics.delta"), 7);
        let hs = &delta.histograms["test.metrics.delta_ns"];
        assert_eq!(hs.count, 1);
        assert_eq!(hs.sum, 100);
    }

    #[test]
    fn json_snapshot_shape() {
        let c = registry().counter("test.metrics.json");
        c.inc();
        let js = registry().snapshot().to_json();
        assert!(js.starts_with("{\"counters\": {"));
        assert!(js.contains("\"test.metrics.json\": "));
        assert!(js.contains("\"histograms\": {"));
        assert!(js.ends_with("}}"));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = registry().gauge("test.metrics.gauge");
        let h = crate::gauge!("test.metrics.gauge");
        assert!(std::ptr::eq(g, h));
        g.inc();
        g.add(4);
        g.dec();
        assert_eq!(h.get(), 4);
        g.set(-2);
        assert_eq!(registry().snapshot().gauge("test.metrics.gauge"), -2);
        g.set(0);
    }

    #[test]
    fn gauge_delta_keeps_level() {
        let g = registry().gauge("test.metrics.gauge_level");
        g.set(3);
        let before = registry().snapshot();
        g.add(2);
        let delta = registry().snapshot().delta(&before);
        // A gauge is a level: the delta reports where it IS, not how
        // far it moved.
        assert_eq!(delta.gauge("test.metrics.gauge_level"), 5);
        g.set(0);
    }

    #[test]
    fn json_snapshot_includes_gauges() {
        registry().gauge("test.metrics.gauge_json").set(7);
        let js = registry().snapshot().to_json();
        assert!(js.contains("\"gauges\": {"));
        assert!(js.contains("\"test.metrics.gauge_json\": 7"));
        registry().gauge("test.metrics.gauge_json").set(0);
    }

    #[test]
    fn counter_sum_by_prefix() {
        registry().counter("test.prefix.a").add(2);
        registry().counter("test.prefix.b").add(3);
        let s = registry().snapshot();
        assert_eq!(s.counter_sum("test.prefix."), 5);
    }
}
