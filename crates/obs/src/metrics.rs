//! The metrics registry: named atomic counters and fixed log₂-bucket
//! histograms, with deterministic text/JSON snapshots.
//!
//! Everything is `'static`: a metric, once registered, lives for the
//! process (the handles are leaked boxes), so hot paths hold plain
//! `&'static` references and pay one relaxed atomic op per update. The
//! registry itself is only locked at registration and snapshot time.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter (normally obtained via
    /// [`Registry::counter`], not constructed directly).
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level that moves both ways (in-flight requests, queue depth).
/// Unlike a [`Counter`], a gauge reports a *state*, not a rate: snapshot
/// deltas keep the later level instead of subtracting.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zeroed gauge (normally obtained via [`Registry::gauge`]).
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `b` counts samples whose value
/// has exactly `b` significant bits, i.e. `v ∈ [2^(b−1), 2^b)`, with
/// bucket 0 holding zeros. 64 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log₂-bucket histogram over `u64` samples (typically
/// nanoseconds). Recording is two relaxed atomic adds plus one for the
/// bucket; no allocation, no locking.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram (normally obtained via
    /// [`Registry::histogram`]).
    pub const fn new() -> Histogram {
        // `[AtomicU64::new(0); N]` needs a const item to repeat; each
        // repetition is a fresh atomic, not a shared one.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records the duration since `start`, in nanoseconds.
    #[inline]
    pub fn record_since(&self, start: std::time::Instant) {
        self.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps on overflow; fine for deltas).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.wrapping_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            buckets: std::array::from_fn(|i| self.buckets[i].wrapping_sub(earlier.buckets[i])),
        }
    }
}

/// A registry of named metrics. The process-wide default is obtained
/// via [`registry`]; additional isolated instances (one per in-process
/// server, say) via [`Registry::leak`]. Handles come from
/// [`crate::counter!`] / [`crate::gauge!`] / [`crate::histogram!`],
/// which resolve against the *current thread's* bound registry (see
/// [`bind_thread_registry`]) so a whole subsystem's metrics can be
/// redirected without threading a handle through every call site.
pub struct Registry {
    id: u64,
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(0);

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Registry {
    /// A fresh, empty, process-lifetime registry, isolated from the
    /// global one. Leaked deliberately: instances are created once per
    /// long-lived component (e.g. per server), not per request.
    pub fn leak() -> &'static Registry {
        Box::leak(Box::new(Registry::default()))
    }

    /// A process-unique identity for this registry instance (used to
    /// key per-thread handle caches).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The counter named `name`, registering it on first use. The cell
    /// is leaked deliberately: metrics are a bounded set of named
    /// statics that live for the process.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// Like [`Registry::counter`] but for runtime-built names (e.g.
    /// `serve.shard.3.executed`). The name is leaked on first
    /// registration; callers are expected to hold the returned handle
    /// rather than re-resolve per update.
    pub fn counter_dyn(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = map.get(name) {
            return c;
        }
        let name: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        map.insert(name, c);
        c
    }

    /// Like [`Registry::gauge`] but for runtime-built names.
    pub fn gauge_dyn(&self, name: &str) -> &'static Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(g) = map.get(name) {
            return g;
        }
        let name: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        map.insert(name, g);
        g
    }

    /// A deterministic (name-sorted) copy of every metric's value.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&n, c)| (n, c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&n, g)| (n, g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&n, h)| (n, h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of the whole registry, used for reporting and for
/// before/after deltas around a measured region.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl Snapshot {
    /// The counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's level, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram's state, `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Metric-wise `self − earlier` (names only in `earlier` drop out:
    /// a metric that existed before the region and never moved inside
    /// it still appears, with value 0). Gauges are *levels*, not rates,
    /// so the delta keeps the later snapshot's level unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&n, &v)| (n, v.wrapping_sub(earlier.counter(n))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(&n, h)| match earlier.histograms.get(n) {
                Some(e) => (n, h.delta(e)),
                None => (n, h.clone()),
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Renders as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {"count", "sum", "mean", "buckets": [[lo, n], ...]}}}`.
    /// Bucket entries list only non-empty buckets as
    /// `[lower_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{n}\": {v}"));
        }
        s.push_str("}, \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{n}\": {v}"));
        }
        s.push_str("}, \"histograms\": {");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{n}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.mean()
            ));
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    s.push_str(", ");
                }
                first = false;
                let lo: u64 = if b == 0 { 0 } else { 1u64 << (b - 1) };
                s.push_str(&format!("[{lo}, {c}]"));
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }
}

impl std::fmt::Display for Snapshot {
    /// A text table: counters, then gauges, then histogram summaries.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0);
        for (n, v) in &self.counters {
            writeln!(f, "{n:<width$}  {v}")?;
        }
        for (n, v) in &self.gauges {
            writeln!(f, "{n:<width$}  {v}")?;
        }
        for (n, h) in &self.histograms {
            writeln!(
                f,
                "{n:<width$}  count={} sum={} mean={}",
                h.count,
                h.sum,
                h.mean()
            )?;
        }
        Ok(())
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry (the default target for any thread that
/// has not been bound to an instance via [`bind_thread_registry`]).
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

struct HandleCaches {
    counters: HashMap<(u64, usize), &'static Counter>,
    gauges: HashMap<(u64, usize), &'static Gauge>,
    histograms: HashMap<(u64, usize), &'static Histogram>,
}

thread_local! {
    static BOUND: Cell<Option<&'static Registry>> = const { Cell::new(None) };
    static CACHES: RefCell<HandleCaches> = RefCell::new(HandleCaches {
        counters: HashMap::new(),
        gauges: HashMap::new(),
        histograms: HashMap::new(),
    });
}

/// Binds the calling thread's metrics to `reg`: every subsequent
/// [`crate::counter!`] / [`crate::gauge!`] / [`crate::histogram!`] on
/// this thread resolves against `reg` instead of the global registry.
/// This is how an in-process server isolates *all* of its metrics
/// (serve, sched, store layers alike) without threading a handle
/// through every call site: it binds each thread it spawns.
pub fn bind_thread_registry(reg: &'static Registry) {
    let _ = BOUND.try_with(|b| b.set(Some(reg)));
}

/// Reverts the calling thread to the global registry.
pub fn unbind_thread_registry() {
    let _ = BOUND.try_with(|b| b.set(None));
}

/// The registry metric macros currently resolve against on this
/// thread: the bound instance if any, else the global one.
pub fn thread_registry() -> &'static Registry {
    BOUND
        .try_with(|b| b.get())
        .ok()
        .flatten()
        .unwrap_or_else(registry)
}

/// Runs `f` with the calling thread bound to `reg`, restoring the
/// previous binding afterwards (also on panic).
pub fn with_registry<R>(reg: &'static Registry, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<&'static Registry>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            let _ = BOUND.try_with(|b| b.set(prev));
        }
    }
    let prev = BOUND.try_with(|b| b.get()).ok().flatten();
    let _restore = Restore(prev);
    bind_thread_registry(reg);
    f()
}

/// Resolves `name` against the thread's current registry, memoized
/// per-thread by `(registry id, name pointer)` so the registry lock is
/// only touched on the first use of a name per thread. Backs
/// [`crate::counter!`]; prefer the macro.
#[doc(hidden)]
pub fn counter_handle(name: &'static str) -> &'static Counter {
    let reg = thread_registry();
    let key = (reg.id, name.as_ptr() as usize);
    CACHES
        .try_with(|c| {
            *c.borrow_mut()
                .counters
                .entry(key)
                .or_insert_with(|| reg.counter(name))
        })
        .unwrap_or_else(|_| reg.counter(name))
}

/// See [`counter_handle`]. Backs [`crate::gauge!`].
#[doc(hidden)]
pub fn gauge_handle(name: &'static str) -> &'static Gauge {
    let reg = thread_registry();
    let key = (reg.id, name.as_ptr() as usize);
    CACHES
        .try_with(|c| {
            *c.borrow_mut()
                .gauges
                .entry(key)
                .or_insert_with(|| reg.gauge(name))
        })
        .unwrap_or_else(|_| reg.gauge(name))
}

/// See [`counter_handle`]. Backs [`crate::histogram!`].
#[doc(hidden)]
pub fn histogram_handle(name: &'static str) -> &'static Histogram {
    let reg = thread_registry();
    let key = (reg.id, name.as_ptr() as usize);
    CACHES
        .try_with(|c| {
            *c.borrow_mut()
                .histograms
                .entry(key)
                .or_insert_with(|| reg.histogram(name))
        })
        .unwrap_or_else(|_| reg.histogram(name))
}

/// A `&'static Counter` for the given name, resolved against the
/// calling thread's current registry (see [`bind_thread_registry`])
/// and cached per thread, so steady-state cost is one thread-local
/// hash-map hit — the registry lock is only touched on first use of a
/// name per thread.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::metrics::counter_handle($name)
    };
}

/// A `&'static Gauge` for the given name, resolved against the calling
/// thread's current registry and cached per thread.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {
        $crate::metrics::gauge_handle($name)
    };
}

/// A `&'static Histogram` for the given name, resolved against the
/// calling thread's current registry and cached per thread.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {
        $crate::metrics::histogram_handle($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let a = registry().counter("test.metrics.idem");
        let b = registry().counter("test.metrics.idem");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn macro_caches_handle() {
        let a = crate::counter!("test.metrics.macro");
        let b = crate::counter!("test.metrics.macro");
        a.add(3);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1: [1, 2)
        h.record(2); // bucket 2: [2, 4)
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.mean(), 206);
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn snapshot_delta_isolates_a_region() {
        let c = registry().counter("test.metrics.delta");
        c.add(5);
        let before = registry().snapshot();
        c.add(7);
        let h = registry().histogram("test.metrics.delta_ns");
        h.record(100);
        let delta = registry().snapshot().delta(&before);
        assert_eq!(delta.counter("test.metrics.delta"), 7);
        let hs = &delta.histograms["test.metrics.delta_ns"];
        assert_eq!(hs.count, 1);
        assert_eq!(hs.sum, 100);
    }

    #[test]
    fn json_snapshot_shape() {
        let c = registry().counter("test.metrics.json");
        c.inc();
        let js = registry().snapshot().to_json();
        assert!(js.starts_with("{\"counters\": {"));
        assert!(js.contains("\"test.metrics.json\": "));
        assert!(js.contains("\"histograms\": {"));
        assert!(js.ends_with("}}"));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = registry().gauge("test.metrics.gauge");
        let h = crate::gauge!("test.metrics.gauge");
        assert!(std::ptr::eq(g, h));
        g.inc();
        g.add(4);
        g.dec();
        assert_eq!(h.get(), 4);
        g.set(-2);
        assert_eq!(registry().snapshot().gauge("test.metrics.gauge"), -2);
        g.set(0);
    }

    #[test]
    fn gauge_delta_keeps_level() {
        let g = registry().gauge("test.metrics.gauge_level");
        g.set(3);
        let before = registry().snapshot();
        g.add(2);
        let delta = registry().snapshot().delta(&before);
        // A gauge is a level: the delta reports where it IS, not how
        // far it moved.
        assert_eq!(delta.gauge("test.metrics.gauge_level"), 5);
        g.set(0);
    }

    #[test]
    fn json_snapshot_includes_gauges() {
        registry().gauge("test.metrics.gauge_json").set(7);
        let js = registry().snapshot().to_json();
        assert!(js.contains("\"gauges\": {"));
        assert!(js.contains("\"test.metrics.gauge_json\": 7"));
        registry().gauge("test.metrics.gauge_json").set(0);
    }

    #[test]
    fn counter_sum_by_prefix() {
        registry().counter("test.prefix.a").add(2);
        registry().counter("test.prefix.b").add(3);
        let s = registry().snapshot();
        assert_eq!(s.counter_sum("test.prefix."), 5);
    }

    #[test]
    fn bound_thread_routes_macros_to_instance_registry() {
        let reg = Registry::leak();
        crate::counter!("test.metrics.bound").add(10); // global: thread unbound
        with_registry(reg, || {
            crate::counter!("test.metrics.bound").add(3);
            crate::gauge!("test.metrics.bound_gauge").set(7);
            crate::histogram!("test.metrics.bound_ns").record(42);
        });
        let own = reg.snapshot();
        assert_eq!(own.counter("test.metrics.bound"), 3);
        assert_eq!(own.gauge("test.metrics.bound_gauge"), 7);
        assert_eq!(own.histogram("test.metrics.bound_ns").unwrap().count, 1);
        // The instance's activity never reached the global registry…
        assert_eq!(registry().snapshot().counter("test.metrics.bound"), 10);
        // …and after the scope the thread is back on the global one.
        crate::counter!("test.metrics.bound").inc();
        assert_eq!(registry().snapshot().counter("test.metrics.bound"), 11);
        assert_eq!(reg.snapshot().counter("test.metrics.bound"), 3);
    }

    #[test]
    fn two_instance_registries_do_not_bleed() {
        let a = Registry::leak();
        let b = Registry::leak();
        assert_ne!(a.id(), b.id());
        let t1 = std::thread::spawn(move || {
            bind_thread_registry(a);
            for _ in 0..5 {
                crate::counter!("test.metrics.bleed").inc();
            }
        });
        let t2 = std::thread::spawn(move || {
            bind_thread_registry(b);
            for _ in 0..9 {
                crate::counter!("test.metrics.bleed").inc();
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(a.snapshot().counter("test.metrics.bleed"), 5);
        assert_eq!(b.snapshot().counter("test.metrics.bleed"), 9);
    }

    #[test]
    fn with_registry_restores_binding_on_panic() {
        let reg = Registry::leak();
        let caught = std::panic::catch_unwind(|| {
            with_registry(reg, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(std::ptr::eq(thread_registry(), registry()));
    }

    #[test]
    fn dyn_names_register_and_dedup_by_content() {
        let reg = Registry::leak();
        let name = format!("test.metrics.shard.{}.executed", 3);
        let c1 = reg.counter_dyn(&name);
        let c2 = reg.counter_dyn(&name);
        assert!(std::ptr::eq(c1, c2));
        c1.add(4);
        assert_eq!(reg.snapshot().counter("test.metrics.shard.3.executed"), 4);
        let g = reg.gauge_dyn("test.metrics.shard.3.depth");
        g.set(2);
        assert_eq!(reg.snapshot().gauge("test.metrics.shard.3.depth"), 2);
    }
}
