//! # cxu-obs — observability for the detection stack
//!
//! The paper's central dichotomy — PTIME detection when the read is
//! linear (§4) vs. NP-complete witness search when both sides branch
//! (§5) — is exactly the split the scheduler exercises per pair, and a
//! perf claim about the stack is only honest when it says *which route
//! fired how often*. This crate is the measurement layer every other
//! workspace crate reports into:
//!
//! * [`metrics`] — registries of named [`metrics::Counter`]s
//!   (relaxed atomic u64), [`metrics::Gauge`]s (two-way atomic i64
//!   levels, e.g. in-flight requests), and [`metrics::Histogram`]s
//!   (fixed log₂ buckets over u64 samples, typically nanoseconds).
//!   Counters are always on: an increment is one relaxed atomic add,
//!   far below the cost of any detector invocation it annotates.
//!   Registration is lazy; the [`counter!`] / [`gauge!`] /
//!   [`histogram!`] macros resolve against the calling thread's
//!   *current* registry — the process-global one by default, or an
//!   isolated [`metrics::Registry`] instance after
//!   [`metrics::bind_thread_registry`] — memoized per thread, so the
//!   registry lock is touched once per name per thread. Instance
//!   registries are how two in-process servers keep their metrics
//!   apart (each binds the threads it spawns).
//! * [`trace`] — a span/event layer that emits JSONL to a sink when
//!   enabled. When disabled (the default) every call collapses to a
//!   single relaxed atomic load; no formatting, no locking, no
//!   allocation happens.
//!
//! The crate has **no dependencies** (the workspace builds hermetically
//! — no network, no vendored registry) and sits below `cxu-runtime`, so
//! every layer of the stack can share the same registry.
//!
//! ## Conventions
//!
//! Metric names are dot-separated `layer.object.verb` strings, e.g.
//! `sched.cache.hit` or `core.brute.deadline`. Histograms carry a unit
//! suffix (`*_ns`). The full catalog lives in `DESIGN.md`
//! ("Observability").
//!
//! ```
//! let c = cxu_obs::counter!("doc.example.hits");
//! c.inc();
//! let before = cxu_obs::metrics::registry().snapshot();
//! c.add(2);
//! let delta = cxu_obs::metrics::registry().snapshot().delta(&before);
//! assert_eq!(delta.counter("doc.example.hits"), 2);
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{
    bind_thread_registry, registry, thread_registry, unbind_thread_registry, with_registry,
    Counter, Gauge, Histogram, Registry, Snapshot,
};
pub use trace::{span, Span};
