//! Span/event tracing with a JSONL sink.
//!
//! The overhead contract: when tracing is disabled (the default), every
//! [`event`] and [`span`] call is a single relaxed atomic load — no
//! formatting, no allocation, no lock. Enabling installs a sink (a file
//! or any `Write + Send`) and every record becomes one JSON object per
//! line:
//!
//! ```text
//! {"ts_us": 41, "ev": "event", "name": "sched.pair", "route": "witness-search", "conflict": true}
//! {"ts_us": 98, "ev": "span", "name": "sched.analyze", "dur_us": 57}
//! ```
//!
//! `ts_us` is microseconds since the sink was installed (monotonic).
//! Spans emit one record *at close*, carrying their duration; there are
//! no span ids or nesting — the stack is shallow and consumers group by
//! name. Field values are numbers, booleans, or escaped strings.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A field value on an event or span record.
#[derive(Clone, Copy, Debug)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with `{}`; NaN/inf render as 0).
    F64(f64),
    /// String (JSON-escaped on write).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

struct Sink {
    writer: Mutex<Option<Box<dyn Write + Send>>>,
    epoch: Mutex<Instant>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| Sink {
        writer: Mutex::new(None),
        epoch: Mutex::new(Instant::now()),
    })
}

/// Is tracing on? One relaxed atomic load — the fast-path check every
/// instrumentation site performs first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a sink and turns tracing on. Replaces (and flushes) any
/// previous sink.
pub fn enable(writer: Box<dyn Write + Send>) {
    let s = sink();
    {
        let mut w = s.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = w.as_mut() {
            let _ = old.flush();
        }
        *w = Some(writer);
        *s.epoch.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Opens (truncating) `path` and installs it as the JSONL sink.
pub fn enable_file(path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    enable(Box::new(std::io::BufWriter::new(f)));
    Ok(())
}

/// Turns tracing off and flushes + drops the sink.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    let s = sink();
    let mut w = s.writer.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = w.as_mut() {
        let _ = old.flush();
    }
    *w = None;
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn write_record(ev: &str, name: &str, dur_us: Option<u64>, fields: &[(&str, Value<'_>)]) {
    let s = sink();
    let ts_us = {
        let epoch = s.epoch.lock().unwrap_or_else(|e| e.into_inner());
        epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    };
    let mut line = format!("{{\"ts_us\": {ts_us}, \"ev\": \"{ev}\", \"name\": \"");
    escape_into(&mut line, name);
    line.push('"');
    if let Some(d) = dur_us {
        line.push_str(&format!(", \"dur_us\": {d}"));
    }
    for (k, v) in fields {
        line.push_str(", \"");
        escape_into(&mut line, k);
        line.push_str("\": ");
        match v {
            Value::U64(x) => line.push_str(&x.to_string()),
            Value::I64(x) => line.push_str(&x.to_string()),
            Value::F64(x) if x.is_finite() => line.push_str(&x.to_string()),
            Value::F64(_) => line.push('0'),
            Value::Bool(x) => line.push_str(if *x { "true" } else { "false" }),
            Value::Str(x) => {
                line.push('"');
                escape_into(&mut line, x);
                line.push('"');
            }
        }
    }
    line.push_str("}\n");
    let mut w = s.writer.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = w.as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

/// Emits one event record (no-op unless [`enabled`]).
#[inline]
pub fn event(name: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled() {
        return;
    }
    write_record("event", name, None, fields);
}

/// An open span: emits a `span` record with its wall-clock duration
/// when dropped (only if tracing was enabled when it was opened).
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Closes the span now with extra fields attached to the record.
    pub fn close_with(mut self, fields: &[(&str, Value<'_>)]) {
        if let Some(start) = self.start.take() {
            let dur = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            write_record("span", self.name, Some(dur), fields);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let dur = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            write_record("span", self.name, Some(dur), &[]);
        }
    }
}

/// Opens a span. When tracing is disabled this is the single atomic
/// load and the returned guard is inert (its drop does nothing).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Vec<u8> sink shared with the test.
    #[derive(Clone, Default)]
    struct Buf(Arc<StdMutex<Vec<u8>>>);
    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Tracing is process-global; serialize the tests that toggle it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn capture<F: FnOnce()>(f: F) -> String {
        let buf = Buf::default();
        enable(Box::new(buf.clone()));
        f();
        disable();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn disabled_tracing_emits_nothing() {
        let _g = lock();
        // Not enabled here: both calls must be inert.
        assert!(!enabled());
        event("test.noop", &[("k", Value::U64(1))]);
        drop(span("test.noop_span"));
    }

    #[test]
    fn events_and_spans_are_jsonl() {
        let _g = lock();
        let out = capture(|| {
            event(
                "test.ev",
                &[
                    ("route", "ptime".into()),
                    ("n", 3usize.into()),
                    ("ok", true.into()),
                ],
            );
            span("test.span").close_with(&[("pairs", 7usize.into())]);
            drop(span("test.span2"));
        });
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(lines[0].contains("\"ev\": \"event\""));
        assert!(lines[0].contains("\"route\": \"ptime\""));
        assert!(lines[0].contains("\"n\": 3"));
        assert!(lines[0].contains("\"ok\": true"));
        assert!(lines[1].contains("\"ev\": \"span\""));
        assert!(lines[1].contains("\"dur_us\": "));
        assert!(lines[1].contains("\"pairs\": 7"));
        assert!(lines[2].contains("\"name\": \"test.span2\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "JSONL line: {l}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        let _g = lock();
        let out = capture(|| {
            event("test.esc", &[("s", "a\"b\\c\nd".into())]);
        });
        assert!(out.contains(r#""s": "a\"b\\c\nd""#), "{out}");
    }

    #[test]
    fn span_opened_while_disabled_stays_inert_after_enable() {
        let s = span("test.pre"); // tracing off: no start recorded
        let out = capture(move || drop(s));
        assert!(out.is_empty(), "{out}");
    }
}
